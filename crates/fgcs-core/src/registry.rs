//! The sharded serving registry: per-host histories, incremental Q/H and
//! kernel caches partitioned across independent shards.
//!
//! ROADMAP item 1 targets TR queries over ~10⁶ hosts under sustained
//! ingest. A single flat `HistoryStore` map behind one lock serializes
//! every ingest against every query; [`ShardedRegistry`] instead routes
//! each host to one of N shards by a deterministic hash
//! ([`fgcs_runtime::shard::shard_of`]), and each shard owns
//!
//! * its hosts' [`HistoryStore`]s plus their per-coordinate
//!   [`IncrementalEstimator`]s,
//! * a per-shard [`QhCache`] memoizing built kernels, and
//! * an append-only ingest log ([`IngestRecord`]) for replay and audit,
//!
//! so operations on different shards never contend, and operations on the
//! same shard contend only on that shard's mutex.
//!
//! **Determinism.** Shard routing affects only *which lock* serializes an
//! operation, never the answer: queries read exactly one host's state, and
//! ingest is append-only per host. A registry with 1 shard and one with N
//! shards return bit-identical TR values for the same ingests (asserted by
//! tests here and byte-identical serve responses in the integration suite).
//!
//! **Incremental estimation.** Query misses are filled from the host's
//! [`IncrementalEstimator`] for that `(day_type, window)` coordinate —
//! O(1) amortized per ingested sample, bitwise-equal to the full-scan
//! estimate (see [`crate::smp::incremental`]). Each host keeps a small
//! bounded set of estimator coordinates; queries beyond that budget fall
//! back to the full-scan oracle, which returns the same bits at rescan
//! cost.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use fgcs_runtime::shard::shard_of;

use crate::batch::TrCurve;
use crate::cache::{KernelDedup, QhCache};
use crate::error::CoreError;
use crate::log::{DayLog, HistoryStore, StateLog};
use crate::model::AvailabilityModel;
use crate::predictor::{solve_memo_key, SmpPredictor, SolverPolicy};
use crate::smp::{IncrementalEstimator, SmpParams};
use crate::state::State;
use crate::window::{DayType, TimeWindow};

/// Configuration for a [`ShardedRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Number of shards (threads ingesting/querying disjoint shards never
    /// contend). Must be at least 1.
    pub shards: usize,
    /// The availability model whose monitoring period stamps ingested days.
    pub model: AvailabilityModel,
    /// Which Eq.-3 solver answers the queries.
    pub solver_policy: SolverPolicy,
    /// Sliding history bound per estimator (`None` = all qualifying days),
    /// mirroring `SmpPredictor::with_max_history_days`.
    pub max_history_days: Option<usize>,
    /// Built-kernel cache capacity *per shard*.
    pub qh_capacity_per_shard: usize,
    /// Distinct `(day_type, window)` estimator coordinates maintained
    /// incrementally per host; further coordinates fall back to full-scan
    /// estimation (same bits, rescan cost).
    pub max_estimators_per_host: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            shards: 8,
            model: AvailabilityModel::default(),
            solver_policy: SolverPolicy::default(),
            max_history_days: None,
            qh_capacity_per_shard: 4096,
            max_estimators_per_host: 4,
        }
    }
}

/// An error from a registry operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The queried host has never been ingested.
    UnknownHost(u64),
    /// An ingested day's index does not advance the host's calendar.
    NonMonotonicDay {
        /// The offending host.
        host: u64,
        /// The host's most recent stored day index.
        last: usize,
        /// The offered day index (must exceed `last`).
        offered: usize,
    },
    /// An ingested day carried no samples.
    EmptyDay {
        /// The offending host.
        host: u64,
    },
    /// The underlying estimation or solve failed.
    Core(CoreError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownHost(host) => write!(f, "unknown host {host}"),
            RegistryError::NonMonotonicDay {
                host,
                last,
                offered,
            } => write!(
                f,
                "host {host}: day index {offered} does not advance the calendar (last {last})"
            ),
            RegistryError::EmptyDay { host } => {
                write!(f, "host {host}: ingested day carries no samples")
            }
            RegistryError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<CoreError> for RegistryError {
    fn from(e: CoreError) -> RegistryError {
        RegistryError::Core(e)
    }
}

/// One entry of a shard's append-only ingest log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestRecord {
    /// The host the day was appended to.
    pub host: u64,
    /// The appended day's calendar index.
    pub day_index: usize,
    /// Number of samples the day carried.
    pub samples: usize,
}

/// Acknowledgement of a successful ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// The host the day was appended to.
    pub host: u64,
    /// The day index the day was stored under (explicit or auto-assigned).
    pub day_index: usize,
    /// Days now stored for the host.
    pub days: usize,
}

/// Aggregate registry counters (takes every shard lock once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Number of shards.
    pub shards: usize,
    /// Hosts with at least one ingested day.
    pub hosts: usize,
    /// Total stored days across all hosts.
    pub days: usize,
    /// Total append-only log records (equals total successful ingests).
    pub log_records: usize,
    /// Kernel interns that found an existing canonical kernel (cross-host
    /// sharing events).
    pub kernel_dedup_hits: u64,
    /// Total kernel intern attempts (hit rate = hits / lookups).
    pub kernel_dedup_lookups: u64,
    /// Live interned kernels (distinct availability classes in service).
    pub kernel_dedup_entries: usize,
}

struct HostEntry {
    history: HistoryStore,
    estimators: Vec<((DayType, TimeWindow), IncrementalEstimator)>,
}

struct Shard {
    hosts: HashMap<u64, HostEntry>,
    qh: QhCache,
    log: Vec<IngestRecord>,
}

/// The hash-partitioned serving registry (see the module docs).
///
/// All methods take `&self`: shards synchronize internally, so a single
/// registry can be shared across ingest and query threads directly (or via
/// [`Arc`]).
pub struct ShardedRegistry {
    shards: Vec<Mutex<Shard>>,
    predictor: SmpPredictor,
    model: AvailabilityModel,
    max_estimators_per_host: usize,
    /// One dedup table shared by every shard's kernel cache: hosts with
    /// identical Q/H windows resolve to one canonical `Arc<SmpParams>`
    /// regardless of which shard they live on, and scalar solves are
    /// memoized once per canonical kernel.
    dedup: Arc<KernelDedup>,
}

impl ShardedRegistry {
    /// Creates an empty registry.
    ///
    /// # Panics
    /// Panics when `config.shards` is zero or the cache capacity is zero.
    #[must_use]
    pub fn new(config: RegistryConfig) -> ShardedRegistry {
        assert!(config.shards > 0, "registry needs at least one shard");
        let mut predictor =
            SmpPredictor::new(config.model).with_solver_policy(config.solver_policy);
        if let Some(n) = config.max_history_days {
            predictor = predictor.with_max_history_days(n);
        }
        let dedup = Arc::new(KernelDedup::new());
        let shards = (0..config.shards)
            .map(|_| {
                Mutex::new(Shard {
                    hosts: HashMap::new(),
                    qh: QhCache::with_dedup(config.qh_capacity_per_shard, Arc::clone(&dedup)),
                    log: Vec::new(),
                })
            })
            .collect();
        ShardedRegistry {
            shards,
            predictor,
            model: config.model,
            max_estimators_per_host: config.max_estimators_per_host,
            dedup,
        }
    }

    /// The cross-shard kernel dedup table (shared by every shard's cache).
    #[must_use]
    pub fn kernel_dedup(&self) -> &Arc<KernelDedup> {
        &self.dedup
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The availability model stamping ingested days.
    #[must_use]
    pub fn model(&self) -> &AvailabilityModel {
        &self.model
    }

    /// Appends one day of classified states to `host`'s history.
    ///
    /// `day_index` anchors the weekday/weekend calendar; when `None` the
    /// day is stored under the host's next consecutive index (0 for a new
    /// host). Explicit indices must strictly advance the host's calendar —
    /// gaps are allowed (they model quarantined or lost days) but reuse and
    /// regression are rejected, which is what keeps every host history
    /// append-only and the incremental estimators exact.
    pub fn ingest_day(
        &self,
        host: u64,
        day_index: Option<usize>,
        states: Vec<State>,
    ) -> Result<IngestAck, RegistryError> {
        let mut guard = self.shard_for(host);
        self.ingest_day_locked(&mut guard, host, day_index, states)
    }

    /// [`ingest_day`](ShardedRegistry::ingest_day) against an already-held
    /// shard lock — the batch pipeline's entry point.
    fn ingest_day_locked(
        &self,
        shard: &mut Shard,
        host: u64,
        day_index: Option<usize>,
        states: Vec<State>,
    ) -> Result<IngestAck, RegistryError> {
        if states.is_empty() {
            return Err(RegistryError::EmptyDay { host });
        }
        let samples = states.len();
        let entry = shard.hosts.entry(host).or_insert_with(|| HostEntry {
            history: HistoryStore::new(),
            estimators: Vec::new(),
        });
        let next_index = entry
            .history
            .days()
            .last()
            .map(|d| d.day_index + 1)
            .unwrap_or(0);
        let idx = day_index.unwrap_or(next_index);
        if let Some(last) = entry.history.days().last() {
            if idx <= last.day_index {
                return Err(RegistryError::NonMonotonicDay {
                    host,
                    last: last.day_index,
                    offered: idx,
                });
            }
        }
        entry.history.push_day(DayLog::new(
            idx,
            StateLog::new(self.model.monitor_period_secs, states),
        ));
        // Fold the new day into every live estimator now, while the ingest
        // holds the shard lock anyway — queries then only rebuild kernels,
        // never re-scan history.
        for (_, est) in &mut entry.estimators {
            est.sync(&entry.history);
        }
        let days = entry.history.len();
        shard.log.push(IngestRecord {
            host,
            day_index: idx,
            samples,
        });
        fgcs_runtime::counter_add!("core.registry.ingested_days", 1);
        fgcs_runtime::counter_add!("core.registry.ingested_samples", samples as u64);
        Ok(IngestAck {
            host,
            day_index: idx,
            days,
        })
    }

    /// Predicts the scalar TR for `host` over `window` on a `day_type` day,
    /// given the machine's state at the window start. Bit-identical to
    /// [`SmpPredictor::predict`] over the same history.
    pub fn predict(
        &self,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<f64, RegistryError> {
        let mut guard = self.shard_for(host);
        self.predict_locked(&mut guard, host, day_type, window, init)
    }

    fn predict_locked(
        &self,
        shard: &mut Shard,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<f64, RegistryError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init).into());
        }
        fgcs_runtime::counter_add!("core.registry.queries", 1);
        let params = self.params_for_locked(shard, host, day_type, window)?;
        let steps = window.steps(self.model.monitor_period_secs);
        // Per-kernel solve memo: hosts sharing the canonical kernel pay the
        // Eq.-3 recursion once per (init, policy, steps) and read the
        // stored bits afterwards.
        let key = solve_memo_key(init, self.predictor.solver_policy(), steps);
        if let Some(tr) = self.dedup.memo_get(&params, key) {
            return Ok(tr);
        }
        let tr = self.predictor.solve_tr(&params, init, steps)?;
        self.dedup.memo_put(&params, key, tr);
        Ok(tr)
    }

    /// Predicts the full TR curve (both operational initial states) for
    /// `host` over `window`. Bit-identical to
    /// [`SmpPredictor::predict_tr_curve`] over the same history.
    pub fn sweep(
        &self,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
    ) -> Result<TrCurve, RegistryError> {
        let mut guard = self.shard_for(host);
        self.sweep_locked(&mut guard, host, day_type, window)
    }

    fn sweep_locked(
        &self,
        shard: &mut Shard,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
    ) -> Result<TrCurve, RegistryError> {
        fgcs_runtime::counter_add!("core.registry.queries", 1);
        let params = self.params_for_locked(shard, host, day_type, window)?;
        let steps = window.steps(self.model.monitor_period_secs);
        Ok(self.predictor.solve_tr_curve(&params, steps)?)
    }

    /// Answers several predict ops for one `(host, day_type, window)` from
    /// a single batched recursion: the Eq.-3 curve is prefix-closed (see
    /// [`crate::batch`]), so one run at the window's full horizon yields
    /// every requested value bit-identically to independent
    /// [`predict`](ShardedRegistry::predict) calls — including the error
    /// cases (a failure init errors in its own slot without poisoning the
    /// rest). Solved values are fed into the per-kernel memo, so later
    /// scalar queries hit it too.
    fn predict_many_locked(
        &self,
        shard: &mut Shard,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
        inits: &[State],
    ) -> Vec<Result<f64, RegistryError>> {
        let steps = window.steps(self.model.monitor_period_secs);
        let policy = self.predictor.solver_policy();
        fgcs_runtime::counter_add!("core.registry.queries", inits.len() as u64);
        let params = match self.params_for_locked(shard, host, day_type, window) {
            Ok(p) => p,
            Err(e) => {
                return inits
                    .iter()
                    .map(|&init| {
                        if init.is_failure() {
                            // predict() checks the init before estimating.
                            Err(CoreError::FailureInitialState(init).into())
                        } else {
                            Err(e.clone())
                        }
                    })
                    .collect();
            }
        };
        let mut out: Vec<Option<Result<f64, RegistryError>>> = inits
            .iter()
            .map(|&init| {
                if init.is_failure() {
                    return Some(Err(CoreError::FailureInitialState(init).into()));
                }
                self.dedup
                    .memo_get(&params, solve_memo_key(init, policy, steps))
                    .map(Ok)
            })
            .collect();
        if out.iter().any(Option::is_none) {
            // At least one value is not memoized: one curve run answers
            // every remaining init at once.
            let curve = self.predictor.solve_tr_curve(&params, steps);
            for (&init, slot) in inits.iter().zip(&mut out) {
                if slot.is_some() {
                    continue;
                }
                *slot = Some(match &curve {
                    Ok(c) => match c.tr(init, steps) {
                        Ok(tr) => {
                            self.dedup
                                .memo_put(&params, solve_memo_key(init, policy, steps), tr);
                            Ok(tr)
                        }
                        Err(e) => Err(e.clone().into()),
                    },
                    Err(e) => Err(e.clone().into()),
                });
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every init answered"))
            .collect()
    }

    /// Days currently stored for `host`, or `None` for unknown hosts.
    #[must_use]
    pub fn host_days(&self, host: u64) -> Option<usize> {
        self.shard_for(host)
            .hosts
            .get(&host)
            .map(|e| e.history.len())
    }

    /// A copy of one shard's append-only ingest log.
    ///
    /// # Panics
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn shard_log(&self, shard: usize) -> Vec<IngestRecord> {
        self.lock(shard).log.clone()
    }

    /// Aggregate counters across all shards.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats {
            shards: self.shards.len(),
            hosts: 0,
            days: 0,
            log_records: 0,
            kernel_dedup_hits: 0,
            kernel_dedup_lookups: 0,
            kernel_dedup_entries: 0,
        };
        for i in 0..self.shards.len() {
            let guard = self.lock(i);
            stats.hosts += guard.hosts.len();
            stats.days += guard.hosts.values().map(|e| e.history.len()).sum::<usize>();
            stats.log_records += guard.log.len();
        }
        stats.kernel_dedup_hits = self.dedup.hits();
        stats.kernel_dedup_lookups = self.dedup.lookups();
        stats.kernel_dedup_entries = self.dedup.entries();
        stats
    }

    /// The shard index `host` routes to — the grouping key for the batch
    /// pipeline.
    #[must_use]
    pub fn shard_index(&self, host: u64) -> usize {
        shard_of(host, self.shards.len())
    }

    /// Opens a session on one shard: the shard lock is taken once and held
    /// for the session's lifetime, so a run of operations against that
    /// shard's hosts pays one lock acquisition instead of one per op.
    /// Every session method is bit-identical to its registry counterpart;
    /// hosts routed to other shards are the caller's responsibility
    /// (enforced by debug assertion).
    ///
    /// # Panics
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn session(&self, shard: usize) -> ShardSession<'_> {
        ShardSession {
            registry: self,
            shard,
            guard: self.lock(shard),
        }
    }

    /// Builds (or fetches) the kernel for a query: per-shard cache first,
    /// then the host's incremental estimator, then the full-scan fallback.
    fn params_for_locked(
        &self,
        shard: &mut Shard,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
    ) -> Result<Arc<SmpParams>, RegistryError> {
        let entry = shard
            .hosts
            .get_mut(&host)
            .ok_or(RegistryError::UnknownHost(host))?;
        let history_days = entry.history.len();
        let HostEntry {
            history,
            estimators,
        } = entry;
        let predictor = &self.predictor;
        let step = self.model.monitor_period_secs;
        let max_days = predictor.history_selection().0;
        let max_estimators = self.max_estimators_per_host;
        let params =
            shard
                .qh
                .get_or_compute(predictor, host, history_days, day_type, window, || {
                    let slot = match estimators
                        .iter()
                        .position(|(coord, _)| *coord == (day_type, window))
                    {
                        Some(i) => Some(i),
                        None if estimators.len() < max_estimators => {
                            estimators.push((
                                (day_type, window),
                                IncrementalEstimator::new(step, day_type, window, max_days),
                            ));
                            Some(estimators.len() - 1)
                        }
                        None => None,
                    };
                    match slot {
                        Some(i) => {
                            fgcs_runtime::counter_add!("core.registry.incremental_rebuilds", 1);
                            estimators[i]
                                .1
                                .sync_and_params(history)
                                .map(Arc::new)
                                .ok_or(CoreError::EmptyHistory { window })
                        }
                        // Estimator budget exhausted for this host: full-scan
                        // oracle (same bits, rescan cost).
                        None => {
                            fgcs_runtime::counter_add!("core.registry.fullscan_fallbacks", 1);
                            predictor
                                .estimate_params(history, day_type, window)
                                .map(Arc::new)
                        }
                    }
                })?;
        Ok(params)
    }

    fn shard_for(&self, host: u64) -> MutexGuard<'_, Shard> {
        self.lock(shard_of(host, self.shards.len()))
    }

    fn lock(&self, shard: usize) -> MutexGuard<'_, Shard> {
        self.shards[shard]
            .lock()
            .expect("registry shard lock poisoned")
    }
}

impl std::fmt::Debug for ShardedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ShardedRegistry")
            .field("shards", &stats.shards)
            .field("hosts", &stats.hosts)
            .field("days", &stats.days)
            .finish()
    }
}

/// A held shard lock with the registry operations scoped to it — see
/// [`ShardedRegistry::session`]. Dropping the session releases the lock.
pub struct ShardSession<'a> {
    registry: &'a ShardedRegistry,
    shard: usize,
    guard: MutexGuard<'a, Shard>,
}

impl ShardSession<'_> {
    /// [`ShardedRegistry::ingest_day`] under the held lock.
    pub fn ingest_day(
        &mut self,
        host: u64,
        day_index: Option<usize>,
        states: Vec<State>,
    ) -> Result<IngestAck, RegistryError> {
        debug_assert_eq!(self.registry.shard_index(host), self.shard);
        self.registry
            .ingest_day_locked(&mut self.guard, host, day_index, states)
    }

    /// [`ShardedRegistry::predict`] under the held lock.
    pub fn predict(
        &mut self,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<f64, RegistryError> {
        debug_assert_eq!(self.registry.shard_index(host), self.shard);
        self.registry
            .predict_locked(&mut self.guard, host, day_type, window, init)
    }

    /// Several predicts for one `(host, day_type, window)` answered from a
    /// single batched recursion run, each slot bit-identical to
    /// [`predict`](ShardSession::predict).
    pub fn predict_many(
        &mut self,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
        inits: &[State],
    ) -> Vec<Result<f64, RegistryError>> {
        debug_assert_eq!(self.registry.shard_index(host), self.shard);
        self.registry
            .predict_many_locked(&mut self.guard, host, day_type, window, inits)
    }

    /// [`ShardedRegistry::sweep`] under the held lock.
    pub fn sweep(
        &mut self,
        host: u64,
        day_type: DayType,
        window: TimeWindow,
    ) -> Result<TrCurve, RegistryError> {
        debug_assert_eq!(self.registry.shard_index(host), self.shard);
        self.registry
            .sweep_locked(&mut self.guard, host, day_type, window)
    }
}

impl std::fmt::Debug for ShardSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSession")
            .field("shard", &self.shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_runtime::rng::{Rng, Xoshiro256};
    use State::*;

    fn config(shards: usize) -> RegistryConfig {
        RegistryConfig {
            shards,
            ..RegistryConfig::default()
        }
    }

    fn random_day(rng: &mut Xoshiro256, len: usize) -> Vec<State> {
        const STATES: [State; 9] = [S1, S1, S1, S1, S2, S2, S3, S4, S5];
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let state = STATES[rng.range_usize(0, STATES.len())];
            let run = rng.range_usize(1, 60);
            for _ in 0..run.min(len - out.len()) {
                out.push(state);
            }
        }
        out
    }

    #[test]
    fn predict_matches_unsharded_predictor_bitwise() {
        let reg = ShardedRegistry::new(config(4));
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut oracle_history = HistoryStore::new();
        for day in 0..9 {
            let states = random_day(&mut rng, 14_400);
            oracle_history.push_day(DayLog::new(day, StateLog::new(6, states.clone())));
            reg.ingest_day(7, Some(day), states).unwrap();
        }
        let window = TimeWindow::from_hours(9.0, 2.0);
        let oracle = SmpPredictor::new(AvailabilityModel::default());
        for init in [S1, S2] {
            let want = oracle.predict(&oracle_history, DayType::Weekday, window, init);
            let got = reg.predict(7, DayType::Weekday, window, init);
            match (want, got) {
                (Ok(w), Ok(g)) => assert_eq!(w.to_bits(), g.to_bits()),
                (w, g) => panic!("divergence: oracle {w:?} registry {g:?}"),
            }
        }
    }

    #[test]
    fn sweep_matches_predict_tr_curve_bitwise() {
        let reg = ShardedRegistry::new(config(3));
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut oracle_history = HistoryStore::new();
        for day in 0..8 {
            let states = random_day(&mut rng, 14_400);
            oracle_history.push_day(DayLog::new(day, StateLog::new(6, states.clone())));
            reg.ingest_day(3, Some(day), states).unwrap();
        }
        let window = TimeWindow::from_hours(23.0, 2.0); // cross-midnight
        let oracle = SmpPredictor::new(AvailabilityModel::default());
        let want = oracle
            .predict_tr_curve(&oracle_history, DayType::Weekday, window)
            .unwrap();
        let got = reg.sweep(3, DayType::Weekday, window).unwrap();
        for init in [S1, S2] {
            assert_eq!(want.curve(init).unwrap(), got.curve(init).unwrap());
        }
    }

    #[test]
    fn shard_count_does_not_change_answers() {
        let one = ShardedRegistry::new(config(1));
        let many = ShardedRegistry::new(config(7));
        let mut rng = Xoshiro256::seed_from_u64(17);
        let hosts: Vec<u64> = (0..20).collect();
        for day in 0..6 {
            for &h in &hosts {
                let states = random_day(&mut rng, 14_400);
                one.ingest_day(h, Some(day), states.clone()).unwrap();
                many.ingest_day(h, Some(day), states).unwrap();
            }
        }
        let window = TimeWindow::from_hours(8.0, 1.0);
        for &h in &hosts {
            let a = one.predict(h, DayType::Weekday, window, S1).unwrap();
            let b = many.predict(h, DayType::Weekday, window, S1).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "host {h}");
        }
        assert_eq!(one.stats().days, many.stats().days);
        assert_eq!(one.stats().log_records, many.stats().log_records);
    }

    #[test]
    fn auto_day_index_advances_per_host() {
        let reg = ShardedRegistry::new(config(2));
        let day = vec![S1; 14_400];
        assert_eq!(reg.ingest_day(1, None, day.clone()).unwrap().day_index, 0);
        assert_eq!(reg.ingest_day(1, None, day.clone()).unwrap().day_index, 1);
        // An explicit gap, then auto continues after it.
        assert_eq!(
            reg.ingest_day(1, Some(5), day.clone()).unwrap().day_index,
            5
        );
        assert_eq!(reg.ingest_day(1, None, day.clone()).unwrap().day_index, 6);
        // Other hosts have independent calendars.
        assert_eq!(reg.ingest_day(2, None, day).unwrap().day_index, 0);
        assert_eq!(reg.host_days(1), Some(4));
    }

    #[test]
    fn non_monotonic_and_empty_ingests_are_rejected() {
        let reg = ShardedRegistry::new(config(2));
        let day = vec![S1; 100];
        reg.ingest_day(1, Some(3), day.clone()).unwrap();
        assert!(matches!(
            reg.ingest_day(1, Some(3), day.clone()),
            Err(RegistryError::NonMonotonicDay {
                last: 3,
                offered: 3,
                ..
            })
        ));
        assert!(matches!(
            reg.ingest_day(1, Some(2), day),
            Err(RegistryError::NonMonotonicDay { .. })
        ));
        assert!(matches!(
            reg.ingest_day(1, None, Vec::new()),
            Err(RegistryError::EmptyDay { host: 1 })
        ));
    }

    #[test]
    fn unknown_host_and_failure_init_error() {
        let reg = ShardedRegistry::new(config(2));
        let window = TimeWindow::from_hours(8.0, 1.0);
        assert!(matches!(
            reg.predict(42, DayType::Weekday, window, S1),
            Err(RegistryError::UnknownHost(42))
        ));
        reg.ingest_day(42, None, vec![S1; 14_400]).unwrap();
        assert!(matches!(
            reg.predict(42, DayType::Weekday, window, S3),
            Err(RegistryError::Core(CoreError::FailureInitialState(S3)))
        ));
    }

    #[test]
    fn estimator_budget_fallback_stays_bitwise() {
        // One estimator slot, three query windows: windows beyond the
        // budget take the full-scan path and must return the same bits.
        let cfg = RegistryConfig {
            max_estimators_per_host: 1,
            ..config(2)
        };
        let reg = ShardedRegistry::new(cfg);
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut oracle_history = HistoryStore::new();
        for day in 0..7 {
            let states = random_day(&mut rng, 14_400);
            oracle_history.push_day(DayLog::new(day, StateLog::new(6, states.clone())));
            reg.ingest_day(9, Some(day), states).unwrap();
        }
        let oracle = SmpPredictor::new(AvailabilityModel::default());
        for start in [6.0, 9.0, 13.0] {
            let window = TimeWindow::from_hours(start, 1.5);
            let want = oracle
                .predict(&oracle_history, DayType::Weekday, window, S1)
                .unwrap();
            let got = reg.predict(9, DayType::Weekday, window, S1).unwrap();
            assert_eq!(want.to_bits(), got.to_bits(), "window start {start}");
        }
    }

    #[test]
    fn queries_without_qualifying_history_error_like_the_oracle() {
        let reg = ShardedRegistry::new(config(2));
        // Only weekend days (indices 5, 6): weekday queries must fail.
        reg.ingest_day(4, Some(5), vec![S1; 14_400]).unwrap();
        reg.ingest_day(4, Some(6), vec![S1; 14_400]).unwrap();
        let window = TimeWindow::from_hours(8.0, 1.0);
        assert!(matches!(
            reg.predict(4, DayType::Weekday, window, S1),
            Err(RegistryError::Core(CoreError::EmptyHistory { .. }))
        ));
        assert!(reg.predict(4, DayType::Weekend, window, S1).is_ok());
    }

    #[test]
    fn stats_and_logs_account_for_every_ingest() {
        let reg = ShardedRegistry::new(config(3));
        for h in 0..5u64 {
            for d in 0..4 {
                reg.ingest_day(h, Some(d), vec![S1; 50]).unwrap();
            }
        }
        let stats = reg.stats();
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.hosts, 5);
        assert_eq!(stats.days, 20);
        assert_eq!(stats.log_records, 20);
        let mut seen = 0;
        for s in 0..reg.shard_count() {
            let log = reg.shard_log(s);
            assert!(log.iter().all(|r| r.samples == 50));
            seen += log.len();
        }
        assert_eq!(seen, 20);
    }

    #[test]
    fn session_ops_are_bit_identical_to_direct_ops() {
        let direct = ShardedRegistry::new(config(4));
        let sessioned = ShardedRegistry::new(config(4));
        let mut rng = Xoshiro256::seed_from_u64(31);
        let window = TimeWindow::from_hours(9.0, 2.0);
        for day in 0..6 {
            for host in 0..10u64 {
                let states = random_day(&mut rng, 14_400);
                direct.ingest_day(host, Some(day), states.clone()).unwrap();
                let mut s = sessioned.session(sessioned.shard_index(host));
                s.ingest_day(host, Some(day), states).unwrap();
            }
        }
        for host in 0..10u64 {
            let a = direct.predict(host, DayType::Weekday, window, S1).unwrap();
            let mut s = sessioned.session(sessioned.shard_index(host));
            let b = s.predict(host, DayType::Weekday, window, S1).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "host {host}");
            let want = direct.sweep(host, DayType::Weekday, window).unwrap();
            let got = s.sweep(host, DayType::Weekday, window).unwrap();
            assert_eq!(want, got, "host {host}");
        }
    }

    #[test]
    fn predict_many_matches_scalar_predicts_bitwise() {
        let reg = ShardedRegistry::new(config(3));
        let mut rng = Xoshiro256::seed_from_u64(71);
        for day in 0..7 {
            reg.ingest_day(5, Some(day), random_day(&mut rng, 14_400))
                .unwrap();
        }
        let window = TimeWindow::from_hours(10.0, 1.5);
        let inits = [S1, S2, S1, S3, S2];
        let scalars: Vec<_> = inits
            .iter()
            .map(|&init| reg.predict(5, DayType::Weekday, window, init))
            .collect();
        let mut s = reg.session(reg.shard_index(5));
        let batched = s.predict_many(5, DayType::Weekday, window, &inits);
        drop(s);
        for (i, (want, got)) in scalars.iter().zip(&batched).enumerate() {
            match (want, got) {
                (Ok(w), Ok(g)) => assert_eq!(w.to_bits(), g.to_bits(), "slot {i}"),
                (Err(w), Err(g)) => assert_eq!(w, g, "slot {i}"),
                (w, g) => panic!("slot {i} diverged: {w:?} vs {g:?}"),
            }
        }
        // Unknown-host groups error per slot like scalar predicts do.
        let mut s = reg.session(reg.shard_index(404));
        let missing = s.predict_many(404, DayType::Weekday, window, &[S1, S3]);
        assert!(matches!(missing[0], Err(RegistryError::UnknownHost(404))));
        assert!(matches!(
            missing[1],
            Err(RegistryError::Core(CoreError::FailureInitialState(S3)))
        ));
    }

    #[test]
    fn identical_hosts_share_kernels_and_solves() {
        let reg = ShardedRegistry::new(config(4));
        let mut rng = Xoshiro256::seed_from_u64(13);
        let days: Vec<Vec<State>> = (0..5).map(|_| random_day(&mut rng, 14_400)).collect();
        // 6 hosts with identical histories, spread over shards.
        for host in 0..6u64 {
            for (d, day) in days.iter().enumerate() {
                reg.ingest_day(host, Some(d), day.clone()).unwrap();
            }
        }
        let window = TimeWindow::from_hours(9.0, 2.0);
        let first = reg.predict(0, DayType::Weekday, window, S1).unwrap();
        for host in 1..6u64 {
            let tr = reg.predict(host, DayType::Weekday, window, S1).unwrap();
            assert_eq!(first.to_bits(), tr.to_bits(), "host {host}");
        }
        let stats = reg.stats();
        assert_eq!(stats.kernel_dedup_entries, 1, "one availability class");
        assert_eq!(stats.kernel_dedup_lookups, 6);
        assert_eq!(stats.kernel_dedup_hits, 5, "five hosts shared the first");
    }

    #[test]
    fn concurrent_mixed_ingest_query_is_safe_and_consistent() {
        let reg = ShardedRegistry::new(config(4));
        let window = TimeWindow::from_hours(8.0, 1.0);
        // Warm every host with enough weekday history to answer queries.
        for h in 0..8u64 {
            for d in 0..3 {
                reg.ingest_day(h, Some(d), vec![S1; 14_400]).unwrap();
            }
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let reg = &reg;
                scope.spawn(move || {
                    let mut rng = Xoshiro256::seed_from_u64(t);
                    for i in 0..50 {
                        let host = rng.range_usize(0, 8) as u64;
                        if i % 5 == 0 {
                            // Ingest with auto index; concurrent appends to
                            // the same host may race on the index, so accept
                            // the (ordered) rejection too.
                            let _ = reg.ingest_day(host, None, vec![S1; 14_400]);
                        } else {
                            let tr = reg.predict(host, DayType::Weekday, window, S1).unwrap();
                            assert_eq!(tr.to_bits(), 1.0f64.to_bits());
                        }
                    }
                });
            }
        });
        assert_eq!(reg.stats().hosts, 8);
    }
}
