//! Error types of the core crate.

use crate::state::State;
use crate::window::TimeWindow;

/// Errors produced by the availability model, history store and predictor.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A sample stream did not divide evenly into whole days.
    PartialDay {
        /// Number of samples supplied.
        samples: usize,
        /// Samples required per day at the configured monitoring period.
        per_day: usize,
    },
    /// A requested window extends past the end of a day log.
    WindowOutOfRange {
        /// The offending window.
        window: TimeWindow,
        /// Length of the log in samples.
        log_len: usize,
        /// Samples the window would need.
        needed: usize,
    },
    /// No history days matched the requested day type / window.
    EmptyHistory {
        /// The window that was requested.
        window: TimeWindow,
    },
    /// Temporal reliability was requested for a failure initial state.
    FailureInitialState(State),
    /// The discretisation steps of the parameters and the request disagree.
    StepMismatch {
        /// Step the SMP parameters were estimated at.
        params_step: u32,
        /// Step implied by the request.
        request_step: u32,
    },
    /// The requested horizon exceeds the horizon the kernel was estimated on.
    HorizonTooLong {
        /// Steps requested.
        requested: usize,
        /// Steps available in the estimated kernel.
        available: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::PartialDay { samples, per_day } => write!(
                f,
                "{samples} samples do not divide into whole days of {per_day}"
            ),
            CoreError::WindowOutOfRange {
                window,
                log_len,
                needed,
            } => write!(
                f,
                "window {window} needs {needed} samples but the log has {log_len}"
            ),
            CoreError::EmptyHistory { window } => {
                write!(f, "no history days cover window {window}")
            }
            CoreError::FailureInitialState(s) => {
                write!(f, "cannot predict from failure state {s}")
            }
            CoreError::StepMismatch {
                params_step,
                request_step,
            } => write!(
                f,
                "parameters were estimated at step {params_step}s but the request uses {request_step}s"
            ),
            CoreError::HorizonTooLong {
                requested,
                available,
            } => write!(
                f,
                "requested horizon of {requested} steps exceeds the estimated {available}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_have_readable_messages() {
        let e = CoreError::FailureInitialState(State::S5);
        assert!(e.to_string().contains("S5"));
        let e = CoreError::PartialDay {
            samples: 10,
            per_day: 14_400,
        };
        assert!(e.to_string().contains("14400"));
        let e = CoreError::EmptyHistory {
            window: TimeWindow::from_hours(8.0, 2.0),
        };
        assert!(e.to_string().contains("08:00"));
    }
}
