//! First-order Markov-chain ablation of the SMP predictor.
//!
//! The paper argues that availability prediction must capture "the dynamic
//! structure of load variations" — in SMP terms, that the next transition
//! depends on *how long* the process has stayed in its current state, not
//! just on the state itself. This module implements the memoryless
//! alternative: a discrete-time Markov chain over the same five states,
//! with the one-step transition matrix estimated from consecutive samples
//! of the same history windows. Holding times are then implicitly
//! geometric.
//!
//! Comparing this chain's temporal reliability against the SMP's (see the
//! `fig7_comparison` binary's `MARKOV` column) quantifies what the
//! semi-Markov holding-time distributions buy.

use crate::error::CoreError;
use crate::state::State;

/// A first-order Markov chain over the five availability states, with the
/// failure states made absorbing (as in the SMP's TR computation).
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    /// Row-stochastic 5×5 one-step matrix (rows S3–S5 are absorbing).
    p: [[f64; 5]; 5],
    step_secs: u32,
}

impl MarkovChain {
    /// Estimates the one-step transition matrix from history windows
    /// (sequences of states at the monitoring period).
    ///
    /// Rows without any observation become absorbing self-loops; the three
    /// failure rows are forced absorbing regardless of what the logs show
    /// (a failure is unrecoverable *for the guest*).
    #[must_use]
    pub fn estimate(windows: &[&[State]], step_secs: u32) -> MarkovChain {
        let mut counts = [[0u64; 5]; 5];
        for w in windows {
            for pair in w.windows(2) {
                counts[pair[0].index()][pair[1].index()] += 1;
            }
        }
        let mut p = [[0.0_f64; 5]; 5];
        for i in 0..5 {
            let failure = State::from_index(i).is_failure();
            let total: u64 = counts[i].iter().sum();
            if failure || total == 0 {
                p[i][i] = 1.0;
                continue;
            }
            for j in 0..5 {
                p[i][j] = counts[i][j] as f64 / total as f64;
            }
        }
        MarkovChain { p, step_secs }
    }

    /// The one-step transition probability.
    #[must_use]
    pub fn transition(&self, from: State, to: State) -> f64 {
        self.p[from.index()][to.index()]
    }

    /// The monitoring period the chain was estimated at.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// Temporal reliability: the probability of not being absorbed in
    /// S3/S4/S5 within `steps` one-step transitions, starting from `init`.
    pub fn temporal_reliability(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        // Propagate the distribution over {S1, S2, absorbed}.
        let mut dist = [0.0_f64; 5];
        dist[init.index()] = 1.0;
        for _ in 0..steps {
            let mut next = [0.0_f64; 5];
            for (i, &mass) in dist.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for (n, pij) in next.iter_mut().zip(&self.p[i]) {
                    *n += mass * pij;
                }
            }
            dist = next;
        }
        let fail: f64 = State::FAILURE.iter().map(|s| dist[s.index()]).sum();
        Ok((1.0 - fail).clamp(0.0, 1.0))
    }

    /// The whole reliability curve `TR(m)` for `m = 0..=steps`.
    pub fn reliability_curve(&self, init: State, steps: usize) -> Result<Vec<f64>, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let mut out = Vec::with_capacity(steps + 1);
        let mut dist = [0.0_f64; 5];
        dist[init.index()] = 1.0;
        let fail_mass = |d: &[f64; 5]| -> f64 { State::FAILURE.iter().map(|s| d[s.index()]).sum() };
        out.push(1.0);
        for _ in 0..steps {
            let mut next = [0.0_f64; 5];
            for (i, &mass) in dist.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for (n, pij) in next.iter_mut().zip(&self.p[i]) {
                    *n += mass * pij;
                }
            }
            dist = next;
            out.push((1.0 - fail_mass(&dist)).clamp(0.0, 1.0));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use State::*;

    #[test]
    fn rows_are_stochastic() {
        let day: Vec<State> = (0..100)
            .map(|i| match i % 10 {
                0..=5 => S1,
                6..=8 => S2,
                _ => S3,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        let chain = MarkovChain::estimate(&windows, 6);
        for i in 0..5 {
            let total: f64 = (0..5).map(|j| chain.p[i][j]).sum();
            assert!((total - 1.0).abs() < 1e-12, "row {i} sums to {total}");
        }
    }

    #[test]
    fn failure_rows_are_absorbing_even_if_logs_recover() {
        // The log shows S3 -> S1 recoveries, but the chain must keep S3
        // absorbing for TR purposes.
        let day = vec![S1, S3, S1, S3, S1];
        let windows: Vec<&[State]> = vec![&day];
        let chain = MarkovChain::estimate(&windows, 6);
        assert_eq!(chain.transition(S3, S3), 1.0);
        assert_eq!(chain.transition(S3, S1), 0.0);
    }

    #[test]
    fn quiet_history_gives_unit_reliability() {
        let day = vec![S1; 50];
        let windows: Vec<&[State]> = vec![&day];
        let chain = MarkovChain::estimate(&windows, 6);
        assert_eq!(chain.temporal_reliability(S1, 100).unwrap(), 1.0);
    }

    #[test]
    fn reliability_decays_geometrically() {
        // S1 -> S3 with per-step probability 0.1.
        let mut counts_day = Vec::new();
        for _ in 0..9 {
            counts_day.push(S1);
        }
        counts_day.push(S3);
        // Build a long sequence with that empirical rate: 9 S1->S1, 1 S1->S3.
        let windows: Vec<&[State]> = vec![&counts_day];
        let chain = MarkovChain::estimate(&windows, 6);
        let tr1 = chain.temporal_reliability(S1, 1).unwrap();
        let tr2 = chain.temporal_reliability(S1, 2).unwrap();
        assert!((tr1 - 8.0 / 9.0).abs() < 1e-12, "tr1 {tr1}");
        assert!((tr2 - tr1 * tr1).abs() < 1e-9, "geometric decay violated");
    }

    #[test]
    fn curve_is_monotone_and_bounded() {
        let day: Vec<State> = (0..200)
            .map(|i| if i % 20 < 18 { S1 } else { S2 })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        let chain = MarkovChain::estimate(&windows, 6);
        let curve = chain.reliability_curve(S1, 50).unwrap();
        assert_eq!(curve[0], 1.0);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
            assert!((0.0..=1.0).contains(&w[1]));
        }
    }

    #[test]
    fn rejects_failure_init() {
        let chain = MarkovChain::estimate(&[], 6);
        assert!(chain.temporal_reliability(S5, 10).is_err());
        assert!(chain.reliability_curve(S4, 10).is_err());
    }

    #[test]
    fn empty_history_is_all_absorbing_selfloops() {
        let chain = MarkovChain::estimate(&[], 6);
        for s in State::ALL {
            assert_eq!(chain.transition(s, s), 1.0);
        }
        assert_eq!(chain.temporal_reliability(S1, 10).unwrap(), 1.0);
    }

    #[test]
    fn markov_misjudges_nongeometric_holding_times() {
        // Deterministic holding: S1 for exactly 10 steps, then S3. The SMP
        // captures "failure exactly at 10"; the Markov chain smears it
        // geometrically, predicting failure mass before step 10.
        use crate::smp::params::SmpParams;
        use crate::smp::solver::SparseSolver;
        let day: Vec<State> = (0..11).map(|i| if i < 10 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day; 5];
        let chain = MarkovChain::estimate(&windows, 6);
        let params = SmpParams::estimate(&windows, 6, 10);
        let smp = SparseSolver::new(&params);

        // At step 5 the true survival is 1.0; SMP knows it, Markov does not.
        let smp_tr5 = smp.temporal_reliability(S1, 5).unwrap();
        let mk_tr5 = chain.temporal_reliability(S1, 5).unwrap();
        assert_eq!(smp_tr5, 1.0);
        assert!(mk_tr5 < 0.75, "markov should lose mass early: {mk_tr5}");
    }
}
