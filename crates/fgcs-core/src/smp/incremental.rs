//! Incremental Q/H estimation: O(1) amortized per arriving sample.
//!
//! The full-scan path ([`crate::predictor::SmpPredictor::estimate_params`])
//! re-reads every qualifying history day on every estimate. At serving
//! scale (ROADMAP item 1: ~10⁶ hosts under sustained ingest) that rescan is
//! the bottleneck: each appended day re-pays the cost of all previous days.
//!
//! [`IncrementalEstimator`] instead folds each day *once*, as soon as its
//! window slice becomes final, into a compact per-day log of decomposed
//! sojourn runs (`SojournRun`). Estimation then replays
//! the retained runs through the same [`SojournAccumulator`] tally rule the
//! batch path uses. Two facts make the result **bitwise identical** to the
//! full-scan oracle, not merely close:
//!
//! 1. The decomposition is shared code (`decompose_window`), so the exact
//!    same runs are produced; and
//! 2. every tally update is an integer addition in `f64` (or on integer
//!    types), which is exact and order-independent — folding days
//!    oldest-first gives the same tallies as the oracle's
//!    most-recent-first scan.
//!
//! The product-limit transform and `SolverKernel` build then run on
//! bit-equal tallies, so the resulting [`SmpParams`] compare equal with
//! `==` (which is what the property tests assert).
//!
//! **Finality rule.** A day at position `pos` is folded only once
//! [`crate::log::HistoryStore::window_states`] can no longer change its
//! answer for that position: either the window fits inside the day's own
//! log, or day `pos + 1` exists (cross-midnight windows stitch into the
//! next stored day; day logs themselves are immutable once pushed). Until
//! then the position is left pending — `sync` is safe to call at any
//! interleaving of appends.
//!
//! **Cost.** `sync` after one appended day decomposes at most one window
//! slice (≤ 2 days of samples, independent of history length), so the
//! update is O(1) per sample amortized. Building [`SmpParams`] allocates
//! the kernel arrays and replays the retained runs — that is the "kernel
//! rebuild", and callers (the sharded registry) cache the built params so a
//! rebuild happens only when the retained-day set rolls over (a new day
//! qualified or an old one slid out of `max_days`).

use std::collections::VecDeque;

use crate::log::HistoryStore;
use crate::smp::params::{decompose_window, SojournRun};
use crate::smp::{SmpParams, SojournAccumulator};
use crate::state::State;
use crate::window::{DayType, TimeWindow};

/// The decomposed sojourn runs of one qualifying day's window slice.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DayDelta {
    /// Position of the day in the history store (diagnostics / debugging).
    pos: usize,
    /// The day's runs in left-to-right order.
    runs: Vec<SojournRun>,
}

/// Sliding-window incremental Q/H estimator for one
/// `(day_type, window, max_days)` coordinate of one host.
///
/// Feed it the host's [`HistoryStore`] via
/// [`sync`](IncrementalEstimator::sync) after appends;
/// [`params`](IncrementalEstimator::params) rebuilds [`SmpParams`] from the
/// retained per-day run logs, bitwise identical to
/// `SmpPredictor::estimate_params` over the same store (see the module
/// docs for why).
#[derive(Debug, Clone)]
pub struct IncrementalEstimator {
    step_secs: u32,
    day_type: DayType,
    window: TimeWindow,
    max_days: Option<usize>,
    /// Next history position whose finality has not been decided yet.
    next_pos: usize,
    /// Run logs of the qualifying days, oldest first, at most `max_days`.
    deltas: VecDeque<DayDelta>,
    /// How many kernel rebuilds `params` has performed (diagnostics).
    rebuilds: u64,
}

impl IncrementalEstimator {
    /// Creates an estimator for one query coordinate. `step_secs` is the
    /// model's monitoring period (`AvailabilityModel::monitor_period_secs`)
    /// and `max_days` mirrors `SmpPredictor::with_max_history_days`
    /// (`None` = all qualifying days).
    ///
    /// # Panics
    /// Panics when `step_secs` is zero.
    #[must_use]
    pub fn new(
        step_secs: u32,
        day_type: DayType,
        window: TimeWindow,
        max_days: Option<usize>,
    ) -> IncrementalEstimator {
        assert!(step_secs > 0, "step must be positive");
        IncrementalEstimator {
            step_secs,
            day_type,
            window,
            max_days,
            next_pos: 0,
            deltas: VecDeque::new(),
            rebuilds: 0,
        }
    }

    /// The query window this estimator maintains statistics for.
    #[must_use]
    pub fn window(&self) -> TimeWindow {
        self.window
    }

    /// The day type this estimator maintains statistics for.
    #[must_use]
    pub fn day_type(&self) -> DayType {
        self.day_type
    }

    /// Number of qualifying days currently retained (after the `max_days`
    /// slide).
    #[must_use]
    pub fn qualifying_days(&self) -> usize {
        if self.max_days == Some(0) {
            return 0;
        }
        self.deltas.len()
    }

    /// Number of kernel rebuilds [`params`](IncrementalEstimator::params)
    /// has performed so far.
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Folds every newly-final history position into the per-day run logs
    /// and slides out days beyond `max_days`. Returns the number of
    /// newly-qualified days (0 when nothing rolled over — the caller can
    /// keep serving a cached kernel in that case).
    ///
    /// `history` must be the same append-only store across calls: days
    /// already folded are never re-read, so replacing or mutating earlier
    /// days would silently desynchronize the statistics (appends only).
    pub fn sync(&mut self, history: &HistoryStore) -> usize {
        let days = history.days();
        let mut folded = 0usize;
        while self.next_pos < days.len() {
            let pos = self.next_pos;
            let day = &days[pos];
            if day.day_type == self.day_type {
                // Finality: `window_states(pos, ..)` either answers from
                // this day alone or stitches into day `pos + 1`. Until that
                // next day exists the answer may still change, so leave the
                // position pending.
                let step = day.log.step_secs();
                let fits = self.window.start_step(step) + self.window.steps(step) < day.log.len();
                if !fits && pos + 1 >= days.len() {
                    break;
                }
                if let Some(states) = history.window_states(pos, self.window) {
                    let mut runs = Vec::new();
                    decompose_window(&states, &mut |run| runs.push(run));
                    self.deltas.push_back(DayDelta { pos, runs });
                    folded += 1;
                    if let Some(n) = self.max_days {
                        while self.deltas.len() > n {
                            self.deltas.pop_front();
                        }
                    }
                }
            }
            self.next_pos += 1;
        }
        folded
    }

    /// Rebuilds the estimated [`SmpParams`] from the retained run logs, or
    /// `None` when no day qualifies yet (the full-scan path errors with
    /// `EmptyHistory` there).
    ///
    /// This is the *rollover* cost: callers should cache the result and
    /// call again only when [`sync`](IncrementalEstimator::sync) reported
    /// new days (or the history grew).
    #[must_use]
    pub fn params(&mut self) -> Option<SmpParams> {
        if self.qualifying_days() == 0 {
            return None;
        }
        let horizon = self.window.steps(self.step_secs);
        let mut acc = SojournAccumulator::new(self.step_secs, horizon);
        let keep = self.max_days.unwrap_or(self.deltas.len());
        let skip = self.deltas.len().saturating_sub(keep);
        for delta in self.deltas.iter().skip(skip) {
            for &run in &delta.runs {
                acc.record(run);
            }
        }
        self.rebuilds += 1;
        Some(acc.finish())
    }

    /// Convenience: [`sync`](IncrementalEstimator::sync) then
    /// [`params`](IncrementalEstimator::params).
    pub fn sync_and_params(&mut self, history: &HistoryStore) -> Option<SmpParams> {
        self.sync(history);
        self.params()
    }

    /// Approximate retained-state footprint in runs (capacity planning for
    /// million-host registries).
    #[must_use]
    pub fn retained_runs(&self) -> usize {
        self.deltas.iter().map(|d| d.runs.len()).sum()
    }

    /// Initial state observed at the window start of the most recent
    /// qualifying day, if any — what a scheduler would use as the query's
    /// `init` when probing this host without a live sample.
    #[must_use]
    pub fn last_window_start_state(&self, history: &HistoryStore) -> Option<State> {
        let pos = self.deltas.back()?.pos;
        history
            .window_states(pos, self.window)
            .and_then(|s| s.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{DayLog, StateLog};
    use crate::model::AvailabilityModel;
    use crate::predictor::SmpPredictor;
    use crate::state::State::*;
    use fgcs_runtime::check::check;
    use fgcs_runtime::rng::{Rng, Xoshiro256};

    const STEP: u32 = 6;

    fn predictor(max_days: Option<usize>) -> SmpPredictor {
        let model = AvailabilityModel::default();
        match max_days {
            Some(n) => SmpPredictor::new(model).with_max_history_days(n),
            None => SmpPredictor::new(model),
        }
    }

    /// A seeded pseudo-random day of `len` samples with occasional failure
    /// and S2 runs.
    fn random_day(rng: &mut Xoshiro256, len: usize) -> Vec<State> {
        const STATES: [State; 9] = [S1, S1, S1, S1, S2, S2, S3, S4, S5];
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let state = STATES[rng.range_usize(0, STATES.len())];
            let run = rng.range_usize(1, 40);
            for _ in 0..run.min(len - out.len()) {
                out.push(state);
            }
        }
        out
    }

    fn full_day(rng: &mut Xoshiro256) -> Vec<State> {
        random_day(rng, 14_400)
    }

    /// Oracle comparison at a single point in time.
    fn assert_matches_oracle(
        est: &mut IncrementalEstimator,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
        max_days: Option<usize>,
    ) {
        let incremental = est.sync_and_params(history);
        let oracle = predictor(max_days).estimate_params(history, day_type, window);
        match (incremental, oracle) {
            (Some(inc), Ok(full)) => assert_eq!(inc, full, "params diverged"),
            (None, Err(_)) => {}
            (inc, full) => panic!(
                "qualification diverged: incremental={:?} oracle_ok={}",
                inc.map(|p| p.sojourn_counts()),
                full.is_ok()
            ),
        }
    }

    #[test]
    fn matches_oracle_on_simple_growing_history() {
        let window = TimeWindow::from_hours(9.0, 2.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, None);
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(42);
        for day in 0..10 {
            history.push_day(DayLog::new(day, StateLog::new(STEP, full_day(&mut g))));
            assert_matches_oracle(&mut est, &history, DayType::Weekday, window, None);
        }
        assert!(est.qualifying_days() > 0);
        assert!(est.retained_runs() > 0);
    }

    #[test]
    fn matches_oracle_across_midnight_stitching() {
        // 23:00 + 2h stitches into the next day: day `pos` only becomes
        // final once day `pos + 1` is appended.
        let window = TimeWindow::from_hours(23.0, 2.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, None);
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(7);
        for day in 0..8 {
            history.push_day(DayLog::new(day, StateLog::new(STEP, full_day(&mut g))));
            assert_matches_oracle(&mut est, &history, DayType::Weekday, window, None);
        }
    }

    #[test]
    fn pending_cross_midnight_day_folds_after_successor() {
        let window = TimeWindow::from_hours(23.0, 2.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, None);
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(3);
        history.push_day(DayLog::new(0, StateLog::new(STEP, full_day(&mut g))));
        assert_eq!(est.sync(&history), 0, "day 0 cannot be final yet");
        assert!(est.params().is_none());
        history.push_day(DayLog::new(1, StateLog::new(STEP, full_day(&mut g))));
        assert_eq!(est.sync(&history), 1, "day 0 finalizes via day 1");
    }

    #[test]
    fn max_days_slides_oldest_days_out() {
        let window = TimeWindow::from_hours(8.0, 1.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, Some(3));
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(11);
        for day in 0..12 {
            history.push_day(DayLog::new(day, StateLog::new(STEP, full_day(&mut g))));
            assert_matches_oracle(&mut est, &history, DayType::Weekday, window, Some(3));
        }
        assert_eq!(est.qualifying_days(), 3);
    }

    #[test]
    fn max_days_zero_never_qualifies() {
        let window = TimeWindow::from_hours(8.0, 1.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, Some(0));
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(13);
        history.push_day(DayLog::new(0, StateLog::new(STEP, full_day(&mut g))));
        est.sync(&history);
        assert_eq!(est.qualifying_days(), 0);
        assert!(est.params().is_none());
    }

    #[test]
    fn truncated_days_are_skipped_like_the_oracle() {
        let window = TimeWindow::from_hours(8.0, 1.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, None);
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(17);
        // Day 0: truncated (100 samples, does not cover 8:00); day 1: full.
        history.push_day(DayLog::new(0, StateLog::new(STEP, random_day(&mut g, 100))));
        assert_matches_oracle(&mut est, &history, DayType::Weekday, window, None);
        history.push_day(DayLog::new(1, StateLog::new(STEP, full_day(&mut g))));
        assert_matches_oracle(&mut est, &history, DayType::Weekday, window, None);
        assert_eq!(est.qualifying_days(), 1);
    }

    #[test]
    fn rebuild_counter_tracks_params_calls() {
        let window = TimeWindow::from_hours(8.0, 1.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, None);
        let mut history = HistoryStore::new();
        let mut g = Xoshiro256::seed_from_u64(19);
        history.push_day(DayLog::new(0, StateLog::new(STEP, full_day(&mut g))));
        est.sync(&history);
        assert_eq!(est.rebuilds(), 0);
        assert!(est.params().is_some());
        assert!(est.params().is_some());
        assert_eq!(est.rebuilds(), 2);
    }

    #[test]
    fn last_window_start_state_tracks_most_recent_day() {
        let window = TimeWindow::from_hours(0.0, 1.0);
        let mut est = IncrementalEstimator::new(STEP, DayType::Weekday, window, None);
        let mut history = HistoryStore::new();
        history.push_day(DayLog::new(0, StateLog::new(STEP, vec![S1; 14_400])));
        history.push_day(DayLog::new(1, StateLog::new(STEP, vec![S2; 14_400])));
        est.sync(&history);
        assert_eq!(est.last_window_start_state(&history), Some(S2));
    }

    /// The satellite property test: incremental ≡ full-rescan after
    /// arbitrary interleavings of appends and rollovers (`params` calls),
    /// over random day types, lengths, windows (incl. cross-midnight) and
    /// `max_days` values.
    #[test]
    fn property_incremental_equals_full_rescan_under_interleavings() {
        check("incremental_qh_equals_full_rescan", 60, |g| {
            let day_type = *g.pick(&DayType::ALL);
            // Random window, biased towards cross-midnight edges.
            let start_secs = g.rng().range_usize(0, 24) as u32 * 3600;
            let len_secs = g.rng().range_usize(1, 5) as u32 * 1800;
            let window = TimeWindow::new(start_secs, len_secs);
            let max_days = if g.bool_with(0.5) {
                Some(g.rng().range_usize(0, 5))
            } else {
                None
            };
            let mut est = IncrementalEstimator::new(STEP, day_type, window, max_days);
            let mut history = HistoryStore::new();
            let n_days = g.rng().range_usize(1, 12);
            let mut day_index = 0usize;
            for _ in 0..n_days {
                // Occasionally truncate a day so qualification is
                // non-trivial; occasionally skip a calendar slot so
                // cross-midnight stitching fails on the gap.
                if g.bool_with(0.1) {
                    day_index += 1;
                }
                let len = if g.bool_with(0.2) {
                    g.rng().range_usize(2, 14_400)
                } else {
                    14_400
                };
                history.push_day(DayLog::new(
                    day_index,
                    StateLog::new(STEP, random_day(g.rng(), len)),
                ));
                day_index += 1;
                // Interleave: sometimes check (forcing a rollover
                // rebuild), sometimes batch several appends.
                if g.bool_with(0.6) {
                    assert_matches_oracle(&mut est, &history, day_type, window, max_days);
                }
            }
            assert_matches_oracle(&mut est, &history, day_type, window, max_days);
            Ok(())
        });
    }
}
