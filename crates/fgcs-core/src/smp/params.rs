//! Estimation of the semi-Markov kernel from history logs.
//!
//! The paper computes the SMP parameters "via the statistics on history
//! logs" of the same time window on the most recent same-type days (§4.2),
//! and stores `Q` and `H(m)` as an 8-element structure thanks to the model's
//! sparsity (§5.3): transitions only leave the two operational states, each
//! towards the other operational state or one of the three absorbing failure
//! states — `2 × 4 = 8` (state, target) pairs.
//!
//! We estimate the *kernel* `q_{i,k}(l) = Pr{next state k, holding time l |
//! entered i}` directly with a discrete-time product-limit (Kaplan–Meier
//! style) estimator, because window-bounded logs are right-censored: a
//! sojourn still in progress when the window ends tells us the holding time
//! exceeded the observed span but not where the process went next. Ignoring
//! censored sojourns would wildly overestimate failure probabilities on
//! quiet machines (most windows contain a single uninterrupted S1 sojourn).
//! `Q` and `H` are recovered as `Q_i(k) = Σ_l q_{i,k}(l)` and
//! `H_{i,k}(l) = q_{i,k}(l) / Q_i(k)`.
//!
//! The first sojourn of a window is left-truncated (the machine entered its
//! state before the window opened). We treat it as entered at the window
//! start; this conditions the statistics on the state occupied at the
//! window's start time-of-day, which matches how the predictor is invoked
//! (the initial state is the state observed at submission time).

use fgcs_runtime::impl_json_struct;

use crate::state::State;

/// Index of the kernel's source states: 0 → S1, 1 → S2.
const SOURCES: [State; 2] = [State::S1, State::S2];

/// Targets for each source, in kernel index order:
/// `[other operational, S3, S4, S5]`.
#[must_use]
fn targets_of(source_idx: usize) -> [State; 4] {
    let other = SOURCES[1 - source_idx];
    [other, State::S3, State::S4, State::S5]
}

/// Maps a target state to its kernel index for the given source, if the
/// transition is representable (self-transitions are not).
fn target_index(source_idx: usize, target: State) -> Option<usize> {
    targets_of(source_idx).iter().position(|&t| t == target)
}

/// The estimated SMP parameters: the sparse semi-Markov kernel
/// `q_{i,k}(l)` for `i ∈ {S1, S2}`, `k ∈ {other, S3, S4, S5}` and
/// `l ∈ 1..=horizon` steps.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpParams {
    step_secs: u32,
    horizon: usize,
    /// `kernel[i][k][l]`; index `l = 0` is unused and kept at 0 so that the
    /// solver can index by holding time directly.
    kernel: [[Vec<f64>; 4]; 2],
    /// Number of sojourns observed per source state (diagnostics).
    sojourns: [usize; 2],
}

impl_json_struct!(SmpParams {
    step_secs,
    horizon,
    kernel,
    sojourns,
});

/// One observed sojourn: how long the process was seen in a state and how
/// (or whether) it left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sojourn {
    /// Transitioned to `target` exactly `duration` steps after entry.
    Completed { duration: usize, target: State },
    /// Still in the state when the window closed; no transition observed
    /// through `at_risk` steps after entry.
    Censored { at_risk: usize },
}

impl SmpParams {
    /// Estimates the kernel from a set of window slices (each slice being
    /// the `steps + 1` fence-post samples of one historical day's window)
    /// with holding times resolved up to `horizon` steps.
    ///
    /// Slices shorter than 2 samples contribute nothing. Slices may have
    /// different lengths (e.g. when mixing day logs of different coverage).
    #[must_use]
    pub fn estimate(windows: &[&[State]], step_secs: u32, horizon: usize) -> SmpParams {
        assert!(step_secs > 0, "step must be positive");
        // events[i][k][l] — transitions to target k at duration l;
        // risk_diff[i][l] — difference array for the at-risk counts.
        let mut events = [
            [
                vec![0u64; horizon + 1],
                vec![0u64; horizon + 1],
                vec![0u64; horizon + 1],
                vec![0u64; horizon + 1],
            ],
            [
                vec![0u64; horizon + 1],
                vec![0u64; horizon + 1],
                vec![0u64; horizon + 1],
                vec![0u64; horizon + 1],
            ],
        ];
        let mut risk_diff = [vec![0i64; horizon + 2], vec![0i64; horizon + 2]];
        let mut sojourns = [0usize; 2];

        for window in windows {
            for (source_idx, sojourn) in decompose(window) {
                sojourns[source_idx] += 1;
                match sojourn {
                    Sojourn::Completed { duration, target } => {
                        let capped = duration.min(horizon);
                        if capped >= 1 {
                            risk_diff[source_idx][1] += 1;
                            risk_diff[source_idx][capped + 1] -= 1;
                        }
                        if duration <= horizon {
                            if let Some(k) = target_index(source_idx, target) {
                                events[source_idx][k][duration] += 1;
                            }
                        }
                    }
                    Sojourn::Censored { at_risk } => {
                        let capped = at_risk.min(horizon);
                        if capped >= 1 {
                            risk_diff[source_idx][1] += 1;
                            risk_diff[source_idx][capped + 1] -= 1;
                        }
                    }
                }
            }
        }

        // Product-limit: q_{i,k}(l) = S_i(l-1) * h_{i,k}(l),
        // S_i(l) = S_i(l-1) * (1 - Σ_k h_{i,k}(l)).
        let mut kernel: [[Vec<f64>; 4]; 2] = [
            [
                vec![0.0; horizon + 1],
                vec![0.0; horizon + 1],
                vec![0.0; horizon + 1],
                vec![0.0; horizon + 1],
            ],
            [
                vec![0.0; horizon + 1],
                vec![0.0; horizon + 1],
                vec![0.0; horizon + 1],
                vec![0.0; horizon + 1],
            ],
        ];
        for i in 0..2 {
            let mut at_risk: i64 = 0;
            let mut survival = 1.0_f64;
            for l in 1..=horizon {
                at_risk += risk_diff[i][l];
                if at_risk <= 0 {
                    break; // no information at longer durations
                }
                let n = at_risk as f64;
                let mut total_hazard = 0.0;
                for k in 0..4 {
                    let h = events[i][k][l] as f64 / n;
                    kernel[i][k][l] = survival * h;
                    total_hazard += h;
                }
                survival *= (1.0 - total_hazard).max(0.0);
            }
        }

        SmpParams {
            step_secs,
            horizon,
            kernel,
            sojourns,
        }
    }

    /// The discretisation step `d` in seconds.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// The maximum holding time (in steps) the kernel resolves.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of sojourns that informed the estimate for each source state.
    #[must_use]
    pub fn sojourn_counts(&self) -> [usize; 2] {
        self.sojourns
    }

    /// Kernel value `q_{from,to}(holding)`; 0 for unrepresentable pairs or
    /// out-of-range holding times.
    #[must_use]
    pub fn kernel_at(&self, from: State, to: State, holding: usize) -> f64 {
        let Some(i) = SOURCES.iter().position(|&s| s == from) else {
            return 0.0;
        };
        let Some(k) = target_index(i, to) else {
            return 0.0;
        };
        if holding == 0 || holding > self.horizon {
            return 0.0;
        }
        self.kernel[i][k][holding]
    }

    /// Raw kernel row for a source state index (0 → S1, 1 → S2), in target
    /// order `[other, S3, S4, S5]`. Used by the solvers.
    #[must_use]
    pub(crate) fn row(&self, source_idx: usize) -> &[Vec<f64>; 4] {
        &self.kernel[source_idx]
    }

    /// The embedded transition probability `Q_i(k) = Σ_l q_{i,k}(l)`.
    ///
    /// Rows may sum to less than 1: the deficit is the estimated probability
    /// of remaining in the state beyond the horizon (right-censoring mass).
    #[must_use]
    pub fn q(&self, from: State, to: State) -> f64 {
        let Some(i) = SOURCES.iter().position(|&s| s == from) else {
            return 0.0;
        };
        let Some(k) = target_index(i, to) else {
            return 0.0;
        };
        self.kernel[i][k][1..].iter().sum()
    }

    /// The holding-time mass function `H_{i,k}(l) = q_{i,k}(l) / Q_i(k)` for
    /// `l ∈ 0..=horizon`, or `None` when the transition has zero estimated
    /// probability (H is then undefined).
    #[must_use]
    pub fn holding_pmf(&self, from: State, to: State) -> Option<Vec<f64>> {
        let total = self.q(from, to);
        if total <= 0.0 {
            return None;
        }
        let i = SOURCES.iter().position(|&s| s == from)?;
        let k = target_index(i, to)?;
        Some(self.kernel[i][k].iter().map(|v| v / total).collect())
    }

    /// Builds parameters directly from a kernel (used by tests and the
    /// noise-free analytic fixtures).
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_kernel(step_secs: u32, kernel: [[Vec<f64>; 4]; 2]) -> SmpParams {
        let horizon = kernel[0][0].len().saturating_sub(1);
        for row in &kernel {
            for col in row {
                assert_eq!(col.len(), horizon + 1, "inconsistent kernel row lengths");
            }
        }
        SmpParams {
            step_secs,
            horizon,
            kernel,
            sojourns: [0, 0],
        }
    }
}

/// Decomposes a window slice into sojourns of the two operational states.
/// Failure-state runs are skipped (nothing transitions out of them in the
/// model); the run following a failure is treated as freshly entered.
fn decompose(window: &[State]) -> Vec<(usize, Sojourn)> {
    let mut out = Vec::new();
    let len = window.len();
    let mut start = 0;
    while start < len {
        let state = window[start];
        let mut end = start;
        while end + 1 < len && window[end + 1] == state {
            end += 1;
        }
        if let Some(source_idx) = SOURCES.iter().position(|&s| s == state) {
            if end + 1 < len {
                out.push((
                    source_idx,
                    Sojourn::Completed {
                        duration: end + 1 - start,
                        target: window[end + 1],
                    },
                ));
            } else {
                let at_risk = end - start; // last sample gives no transition info
                if at_risk >= 1 {
                    out.push((source_idx, Sojourn::Censored { at_risk }));
                }
            }
        }
        start = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use State::*;

    #[test]
    fn decompose_identifies_completed_and_censored() {
        let w = [S1, S1, S2, S2, S2, S1];
        let s = decompose(&w);
        assert_eq!(
            s,
            vec![
                (
                    0,
                    Sojourn::Completed {
                        duration: 2,
                        target: S2
                    }
                ),
                (
                    1,
                    Sojourn::Completed {
                        duration: 3,
                        target: S1
                    }
                ),
                // trailing single-sample S1 run: no at-risk time, dropped
            ]
        );
    }

    #[test]
    fn decompose_censors_trailing_run() {
        let w = [S1, S1, S1, S1];
        let s = decompose(&w);
        assert_eq!(s, vec![(0, Sojourn::Censored { at_risk: 3 })]);
    }

    #[test]
    fn decompose_skips_failure_runs() {
        let w = [S1, S3, S3, S2, S2];
        let s = decompose(&w);
        assert_eq!(
            s,
            vec![
                (
                    0,
                    Sojourn::Completed {
                        duration: 1,
                        target: S3
                    }
                ),
                (1, Sojourn::Censored { at_risk: 1 }),
            ]
        );
    }

    #[test]
    fn all_identical_window_yields_no_failure_mass() {
        let w = vec![S1; 101];
        let p = SmpParams::estimate(&[&w], 6, 100);
        for to in [S2, S3, S4, S5] {
            assert_eq!(p.q(S1, to), 0.0);
        }
        assert_eq!(p.sojourn_counts(), [1, 0]);
    }

    #[test]
    fn deterministic_transition_estimated_exactly() {
        // Every day: 5 steps of S1, then S3 for the rest (11 samples = 10 steps).
        let day: Vec<State> = (0..11).map(|i| if i < 5 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day, &day, &day];
        let p = SmpParams::estimate(&windows, 6, 10);
        assert!((p.q(S1, S3) - 1.0).abs() < 1e-12);
        let pmf = p.holding_pmf(S1, S3).unwrap();
        assert!((pmf[5] - 1.0).abs() < 1e-12);
        assert_eq!(p.kernel_at(S1, S3, 5), 1.0);
        assert_eq!(p.kernel_at(S1, S3, 4), 0.0);
    }

    #[test]
    fn censoring_prevents_overestimation() {
        // 8 quiet days (never leave S1) + 2 failing days (S1 -> S3 at step 5).
        let quiet = vec![S1; 11];
        let failing: Vec<State> = (0..11).map(|i| if i < 5 { S1 } else { S3 }).collect();
        let mut windows: Vec<&[State]> = vec![&quiet; 8];
        windows.push(&failing);
        windows.push(&failing);
        let p = SmpParams::estimate(&windows, 6, 10);
        // Naive completed-only estimation would give Q(S1->S3) = 1.0.
        // The product-limit estimate is the empirical hazard at step 5:
        // 2 events among 10 at risk -> Q = 0.2.
        assert!((p.q(S1, S3) - 0.2).abs() < 1e-9, "q = {}", p.q(S1, S3));
    }

    #[test]
    fn rows_are_subprobabilities() {
        let day: Vec<State> = (0..21)
            .map(|i| match i % 7 {
                0..=2 => S1,
                3..=4 => S2,
                _ => S1,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 20);
        for from in [S1, S2] {
            let total: f64 = [S1, S2, S3, S4, S5]
                .into_iter()
                .map(|to| p.q(from, to))
                .sum();
            assert!(total <= 1.0 + 1e-9, "row {from} sums to {total}");
        }
    }

    #[test]
    fn holding_pmf_sums_to_one_when_defined() {
        let day: Vec<State> = (0..31).map(|i| if i % 10 < 6 { S1 } else { S2 }).collect();
        let windows: Vec<&[State]> = vec![&day, &day];
        let p = SmpParams::estimate(&windows, 6, 30);
        if let Some(pmf) = p.holding_pmf(S1, S2) {
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
        } else {
            panic!("expected S1->S2 transitions to be observed");
        }
    }

    #[test]
    fn holding_pmf_none_for_unobserved_transition() {
        let day = vec![S1; 11];
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 10);
        assert!(p.holding_pmf(S1, S5).is_none());
    }

    #[test]
    fn kernel_ignores_failure_sources_and_self_transitions() {
        let day: Vec<State> = (0..11).map(|i| if i < 5 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 10);
        assert_eq!(p.q(S3, S1), 0.0);
        assert_eq!(p.q(S1, S1), 0.0);
        assert_eq!(p.kernel_at(S5, S1, 3), 0.0);
    }

    #[test]
    fn empty_windows_give_empty_kernel() {
        let p = SmpParams::estimate(&[], 6, 10);
        assert_eq!(p.sojourn_counts(), [0, 0]);
        assert_eq!(p.q(S1, S3), 0.0);
    }

    #[test]
    fn horizon_caps_contributions() {
        // Transition at duration 8 with horizon 5: no event mass within horizon.
        let day: Vec<State> = (0..11).map(|i| if i < 8 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 5);
        assert_eq!(p.q(S1, S3), 0.0);
        assert_eq!(p.horizon(), 5);
    }

    #[test]
    fn from_kernel_round_trips() {
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; 6];
            }
        }
        kernel[0][1][3] = 0.25; // q_{S1,S3}(3)
        let p = SmpParams::from_kernel(6, kernel);
        assert_eq!(p.horizon(), 5);
        assert_eq!(p.kernel_at(S1, S3, 3), 0.25);
        assert_eq!(p.q(S1, S3), 0.25);
    }
}
