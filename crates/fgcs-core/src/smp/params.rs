//! Estimation of the semi-Markov kernel from history logs.
//!
//! The paper computes the SMP parameters "via the statistics on history
//! logs" of the same time window on the most recent same-type days (§4.2),
//! and stores `Q` and `H(m)` as an 8-element structure thanks to the model's
//! sparsity (§5.3): transitions only leave the two operational states, each
//! towards the other operational state or one of the three absorbing failure
//! states — `2 × 4 = 8` (state, target) pairs.
//!
//! We estimate the *kernel* `q_{i,k}(l) = Pr{next state k, holding time l |
//! entered i}` directly with a discrete-time product-limit (Kaplan–Meier
//! style) estimator, because window-bounded logs are right-censored: a
//! sojourn still in progress when the window ends tells us the holding time
//! exceeded the observed span but not where the process went next. Ignoring
//! censored sojourns would wildly overestimate failure probabilities on
//! quiet machines (most windows contain a single uninterrupted S1 sojourn).
//! `Q` and `H` are recovered as `Q_i(k) = Σ_l q_{i,k}(l)` and
//! `H_{i,k}(l) = q_{i,k}(l) / Q_i(k)`.
//!
//! The first sojourn of a window is left-truncated (the machine entered its
//! state before the window opened). We treat it as entered at the window
//! start; this conditions the statistics on the state occupied at the
//! window's start time-of-day, which matches how the predictor is invoked
//! (the initial state is the state observed at submission time).
//!
//! Besides the raw kernel, [`SmpParams`] carries a derived `SolverKernel`:
//! sorted `(holding, mass)` event lists, prefix sums of the direct-failure
//! mass, and per-row `Q` totals. These are built once at estimation (or
//! deserialization) time, so every solve and every `Qh` lookup afterwards is
//! allocation-free and O(1) per term — and a cached `Arc<SmpParams>` shares
//! them across all consumers.

use std::sync::OnceLock;

use fgcs_runtime::json::{FromJson, Json, JsonError, ToJson};

use crate::state::State;

/// Index of the kernel's source states: 0 → S1, 1 → S2.
const SOURCES: [State; 2] = [State::S1, State::S2];

/// Targets for each source, in kernel index order:
/// `[other operational, S3, S4, S5]`.
#[must_use]
fn targets_of(source_idx: usize) -> [State; 4] {
    let other = SOURCES[1 - source_idx];
    [other, State::S3, State::S4, State::S5]
}

/// Maps a target state to its kernel index for the given source, if the
/// transition is representable (self-transitions are not).
fn target_index(source_idx: usize, target: State) -> Option<usize> {
    targets_of(source_idx).iter().position(|&t| t == target)
}

/// Precomputed solver-facing view of the kernel, derived from the raw
/// `q_{i,k}(l)` arrays once per estimate and shared by every solve:
///
/// * `trans[i]` — ascending `(holding, mass)` events of the operational
///   transition (`S1→S2` / `S2→S1`), the only lists the Eq.-3 convolution
///   has to scan;
/// * `failures[i][j]` — ascending events towards failure state `S(3+j)`
///   (diagnostics and `nnz` accounting);
/// * `direct_prefix[i]` — triple-interleaved prefix sums
///   `dp[3·m + j] = Σ_{l ≤ m} q_{i,S(3+j)}(l)`, making every direct-failure
///   term of the recursion a single O(1) load;
/// * `q_total[i][k]` — the embedded transition probabilities
///   `Q_i(k) = Σ_l q_{i,k}(l)`, making [`SmpParams::q`] and the
///   holding-time pmf normalisers O(1).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SolverKernel {
    trans: [Vec<(usize, f64)>; 2],
    failures: [[Vec<(usize, f64)>; 3]; 2],
    direct_prefix: [Vec<f64>; 2],
    q_total: [[f64; 4]; 2],
}

impl SolverKernel {
    /// Builds the derived structures from the raw kernel arrays.
    fn build(kernel: &[[Vec<f64>; 4]; 2], horizon: usize) -> SolverKernel {
        let mut trans: [Vec<(usize, f64)>; 2] = Default::default();
        let mut failures: [[Vec<(usize, f64)>; 3]; 2] = Default::default();
        let mut direct_prefix: [Vec<f64>; 2] = Default::default();
        let mut q_total = [[0.0_f64; 4]; 2];
        for i in 0..2 {
            for (l, &v) in kernel[i][0].iter().enumerate() {
                if v != 0.0 {
                    trans[i].push((l, v));
                }
            }
            for j in 0..3 {
                for (l, &v) in kernel[i][j + 1].iter().enumerate() {
                    if v != 0.0 {
                        failures[i][j].push((l, v));
                    }
                }
            }
            // Prefix sums accumulate every l in ascending order — the same
            // nonzero additions (zeros are exact no-ops) the event-cursor
            // formulation performs, so downstream sums are bit-equal.
            let mut dp = vec![0.0_f64; 3 * (horizon + 1)];
            for m in 1..=horizon {
                for j in 0..3 {
                    dp[3 * m + j] = dp[3 * (m - 1) + j] + kernel[i][j + 1][m];
                }
            }
            direct_prefix[i] = dp;
            for k in 0..4 {
                // Same reduction order as `kernel[i][k][1..].iter().sum()`.
                q_total[i][k] = kernel[i][k][1..].iter().sum();
            }
        }
        SolverKernel {
            trans,
            failures,
            direct_prefix,
            q_total,
        }
    }

    /// Ascending `(holding, mass)` events of the operational transition out
    /// of source `i`.
    #[must_use]
    pub(crate) fn trans_events(&self, source_idx: usize) -> &[(usize, f64)] {
        &self.trans[source_idx]
    }

    /// Triple-interleaved direct-failure prefix sums for source `i`:
    /// `dp[3·m + j] = Σ_{l ≤ m} q_{i,S(3+j)}(l)`.
    #[must_use]
    pub(crate) fn direct_prefix(&self, source_idx: usize) -> &[f64] {
        &self.direct_prefix[source_idx]
    }

    /// Total number of nonzero kernel entries.
    #[must_use]
    pub(crate) fn nnz(&self) -> usize {
        self.trans.iter().map(Vec::len).sum::<usize>()
            + self
                .failures
                .iter()
                .flat_map(|row| row.iter())
                .map(Vec::len)
                .sum::<usize>()
    }
}

/// The estimated SMP parameters: the sparse semi-Markov kernel
/// `q_{i,k}(l)` for `i ∈ {S1, S2}`, `k ∈ {other, S3, S4, S5}` and
/// `l ∈ 1..=horizon` steps, plus the precomputed `SolverKernel` view.
#[derive(Debug, Clone)]
pub struct SmpParams {
    step_secs: u32,
    horizon: usize,
    /// `kernel[i][k][l]`; index `l = 0` is unused and kept at 0 so that the
    /// solver can index by holding time directly.
    kernel: [[Vec<f64>; 4]; 2],
    /// Number of sojourns observed per source state (diagnostics).
    sojourns: [usize; 2],
    /// Derived, not serialized: rebuilt from `kernel` on deserialization.
    solver: SolverKernel,
    /// Lazy FNV-1a content hash (the kernel-dedup lookup key). Derived, so
    /// excluded from equality and serialization.
    hash: OnceLock<u64>,
}

// Manual equality over the content fields only. `solver` is a pure function
// of `(kernel, horizon)` and `hash` is a lazy memo — including either would
// make content-equal values compare unequal depending on what has been
// computed so far (`OnceLock` equality compares `get()` results).
impl PartialEq for SmpParams {
    fn eq(&self, other: &SmpParams) -> bool {
        self.step_secs == other.step_secs
            && self.horizon == other.horizon
            && self.sojourns == other.sojourns
            && self.kernel == other.kernel
    }
}

// `solver` is derived state, so the JSON form carries only the four
// original fields (same wire layout `impl_json_struct!` produced before the
// derived view existed) and rebuilds the view on parse.
impl ToJson for SmpParams {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("step_secs".to_string(), self.step_secs.to_json()),
            ("horizon".to_string(), self.horizon.to_json()),
            ("kernel".to_string(), self.kernel.to_json()),
            ("sojourns".to_string(), self.sojourns.to_json()),
        ])
    }
}

impl FromJson for SmpParams {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let step_secs: u32 = v.get("step_secs")?;
        let horizon: usize = v.get("horizon")?;
        let kernel: [[Vec<f64>; 4]; 2] = v.get("kernel")?;
        let sojourns: [usize; 2] = v.get("sojourns")?;
        for row in &kernel {
            for col in row {
                if col.len() != horizon + 1 {
                    return Err(JsonError(format!(
                        "kernel row length {} does not match horizon {horizon}",
                        col.len()
                    )));
                }
            }
        }
        Ok(SmpParams::from_parts(step_secs, horizon, kernel, sojourns))
    }
}

/// A borrowed view of the holding-time mass function
/// `H_{i,k}(l) = q_{i,k}(l) / Q_i(k)`: values are produced on demand from
/// the kernel row and its precomputed total, so taking the pmf allocates
/// nothing.
#[derive(Debug, Clone, Copy)]
pub struct HoldingPmf<'a> {
    masses: &'a [f64],
    total: f64,
}

impl HoldingPmf<'_> {
    /// Number of entries (`horizon + 1`; index 0 is the unused `l = 0`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.masses.len()
    }

    /// Whether the view has no entries (never true for a valid kernel).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.masses.is_empty()
    }

    /// `H(l)` — the probability the holding time is exactly `l` steps,
    /// conditioned on the transition happening.
    ///
    /// # Panics
    /// Panics when `l >= self.len()`.
    #[must_use]
    pub fn value(&self, l: usize) -> f64 {
        self.masses[l] / self.total
    }

    /// Iterates `H(l)` for `l = 0..len`.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.masses.iter().map(|v| v / self.total)
    }
}

/// One sojourn run decomposed from a window slice: either a completed
/// sojourn (the process left its source state within the window) or a
/// right-censored one (still in the source state at the window edge).
///
/// Runs are the unit the incremental estimator logs per day: replaying a
/// day's runs through [`SojournAccumulator::record`] reproduces exactly the
/// tally updates [`SojournAccumulator::push_window`] would have made, so
/// both paths share one decomposition and one tally rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SojournRun {
    /// Left the source state after `duration` steps towards `target`.
    Completed {
        /// Kernel source index (0 → S1, 1 → S2).
        source_idx: usize,
        /// Holding time in steps (uncapped; capping is a tally concern).
        duration: usize,
        /// The state entered next (possibly a failure state).
        target: State,
    },
    /// Still in the source state at the window edge with `at_risk`
    /// observable steps (the final fence-post sample carries no transition
    /// information).
    Censored {
        /// Kernel source index (0 → S1, 1 → S2).
        source_idx: usize,
        /// Fully-observed steps the sojourn was at risk for.
        at_risk: usize,
    },
}

/// Decomposes one window slice into its operational sojourn runs, emitting
/// each through `emit` in left-to-right order. Runs starting in failure
/// states are not emitted (they carry no kernel information).
pub(crate) fn decompose_window(window: &[State], emit: &mut impl FnMut(SojournRun)) {
    let len = window.len();
    let mut start = 0;
    while start < len {
        let state = window[start];
        let mut end = start;
        while end + 1 < len && window[end + 1] == state {
            end += 1;
        }
        if let Some(source_idx) = SOURCES.iter().position(|&s| s == state) {
            if end + 1 < len {
                emit(SojournRun::Completed {
                    source_idx,
                    duration: end + 1 - start,
                    target: window[end + 1],
                });
            } else {
                emit(SojournRun::Censored {
                    source_idx,
                    at_risk: end - start,
                });
            }
        }
        start = end + 1;
    }
}

/// Streaming single-pass estimator for [`SmpParams`]: feed window slices
/// one at a time, then [`finish`](SojournAccumulator::finish).
///
/// Unlike a batch formulation that first materializes per-window sojourn
/// lists, the accumulator decomposes each window in place and updates the
/// event and at-risk tallies directly — `push_window` performs no heap
/// allocation, and `finish` converts the tallies into the kernel inside the
/// buffers they were counted in. This is the shape an O(1)-per-sample
/// online update (ROADMAP item 1) extends.
#[derive(Debug, Clone)]
pub struct SojournAccumulator {
    step_secs: u32,
    horizon: usize,
    /// `events[i][k][l]` — transition counts (exact in f64 for any
    /// realistic tally); reused as kernel storage by `finish`.
    events: [[Vec<f64>; 4]; 2],
    /// Difference array for the at-risk counts.
    risk_diff: [Vec<i64>; 2],
    sojourns: [usize; 2],
}

impl SojournAccumulator {
    /// Creates an empty accumulator.
    ///
    /// # Panics
    /// Panics when `step_secs` is zero.
    #[must_use]
    pub fn new(step_secs: u32, horizon: usize) -> SojournAccumulator {
        assert!(step_secs > 0, "step must be positive");
        let col = || vec![0.0_f64; horizon + 1];
        SojournAccumulator {
            step_secs,
            horizon,
            events: [[col(), col(), col(), col()], [col(), col(), col(), col()]],
            risk_diff: [vec![0i64; horizon + 2], vec![0i64; horizon + 2]],
            sojourns: [0usize; 2],
        }
    }

    /// Folds one window slice (the `steps + 1` fence-post samples of one
    /// historical day's window) into the tallies. Slices shorter than 2
    /// samples contribute nothing. Allocation-free.
    pub fn push_window(&mut self, window: &[State]) {
        decompose_window(window, &mut |run| self.record(run));
    }

    /// Folds one decomposed sojourn run into the tallies — the single tally
    /// rule shared by [`push_window`](SojournAccumulator::push_window) and
    /// the incremental estimator's per-day replay. Event counts are integer
    /// additions in `f64` (exact for any realistic tally), so replaying runs
    /// in any order yields bitwise-identical tallies.
    pub(crate) fn record(&mut self, run: SojournRun) {
        match run {
            SojournRun::Completed {
                source_idx,
                duration,
                target,
            } => {
                self.sojourns[source_idx] += 1;
                let capped = duration.min(self.horizon);
                if capped >= 1 {
                    self.risk_diff[source_idx][1] += 1;
                    self.risk_diff[source_idx][capped + 1] -= 1;
                }
                if duration <= self.horizon {
                    if let Some(k) = target_index(source_idx, target) {
                        self.events[source_idx][k][duration] += 1.0;
                    }
                }
            }
            SojournRun::Censored {
                source_idx,
                at_risk,
            } => {
                // The final sample gives no transition information, so the
                // run is only informative with at least one at-risk step.
                if at_risk >= 1 {
                    self.sojourns[source_idx] += 1;
                    let capped = at_risk.min(self.horizon);
                    self.risk_diff[source_idx][1] += 1;
                    self.risk_diff[source_idx][capped + 1] -= 1;
                }
            }
        }
    }

    /// Number of sojourns accumulated so far per source state.
    #[must_use]
    pub fn sojourn_counts(&self) -> [usize; 2] {
        self.sojourns
    }

    /// Converts the tallies into estimated parameters. The event-count
    /// buffers are transformed into the kernel in place — no intermediate
    /// arrays are allocated.
    #[must_use]
    pub fn finish(self) -> SmpParams {
        let SojournAccumulator {
            step_secs,
            horizon,
            mut events,
            risk_diff,
            sojourns,
        } = self;
        // Product-limit: q_{i,k}(l) = S_i(l-1) * h_{i,k}(l),
        // S_i(l) = S_i(l-1) * (1 - Σ_k h_{i,k}(l)).
        for i in 0..2 {
            let mut at_risk: i64 = 0;
            let mut survival = 1.0_f64;
            for l in 1..=horizon {
                at_risk += risk_diff[i][l];
                if at_risk <= 0 {
                    // No information at longer durations; clear any residual
                    // counts so they cannot read as kernel mass.
                    for col in &mut events[i] {
                        for v in &mut col[l..] {
                            *v = 0.0;
                        }
                    }
                    break;
                }
                let n = at_risk as f64;
                let mut total_hazard = 0.0;
                for col in &mut events[i] {
                    let h = col[l] / n;
                    col[l] = survival * h;
                    total_hazard += h;
                }
                survival *= (1.0 - total_hazard).max(0.0);
            }
        }
        let solver = SolverKernel::build(&events, horizon);
        SmpParams {
            step_secs,
            horizon,
            kernel: events,
            sojourns,
            solver,
            hash: OnceLock::new(),
        }
    }
}

impl SmpParams {
    /// Estimates the kernel from a set of window slices (each slice being
    /// the `steps + 1` fence-post samples of one historical day's window)
    /// with holding times resolved up to `horizon` steps.
    ///
    /// Slices shorter than 2 samples contribute nothing. Slices may have
    /// different lengths (e.g. when mixing day logs of different coverage).
    #[must_use]
    pub fn estimate(windows: &[&[State]], step_secs: u32, horizon: usize) -> SmpParams {
        let mut acc = SojournAccumulator::new(step_secs, horizon);
        for window in windows {
            acc.push_window(window);
        }
        acc.finish()
    }

    /// The discretisation step `d` in seconds.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// The maximum holding time (in steps) the kernel resolves.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of sojourns that informed the estimate for each source state.
    #[must_use]
    pub fn sojourn_counts(&self) -> [usize; 2] {
        self.sojourns
    }

    /// Kernel value `q_{from,to}(holding)`; 0 for unrepresentable pairs or
    /// out-of-range holding times.
    #[must_use]
    pub fn kernel_at(&self, from: State, to: State, holding: usize) -> f64 {
        let Some(i) = SOURCES.iter().position(|&s| s == from) else {
            return 0.0;
        };
        let Some(k) = target_index(i, to) else {
            return 0.0;
        };
        if holding == 0 || holding > self.horizon {
            return 0.0;
        }
        self.kernel[i][k][holding]
    }

    /// Raw kernel row for a source state index (0 → S1, 1 → S2), in target
    /// order `[other, S3, S4, S5]`. Used by the paper-order solvers.
    #[must_use]
    pub(crate) fn row(&self, source_idx: usize) -> &[Vec<f64>; 4] {
        &self.kernel[source_idx]
    }

    /// The precomputed solver-facing view (event lists, prefix sums,
    /// row totals).
    #[must_use]
    pub(crate) fn solver_kernel(&self) -> &SolverKernel {
        &self.solver
    }

    /// The embedded transition probability `Q_i(k) = Σ_l q_{i,k}(l)`,
    /// served from the precomputed row totals in O(1).
    ///
    /// Rows may sum to less than 1: the deficit is the estimated probability
    /// of remaining in the state beyond the horizon (right-censoring mass).
    #[must_use]
    pub fn q(&self, from: State, to: State) -> f64 {
        let Some(i) = SOURCES.iter().position(|&s| s == from) else {
            return 0.0;
        };
        let Some(k) = target_index(i, to) else {
            return 0.0;
        };
        self.solver.q_total[i][k]
    }

    /// The holding-time mass function `H_{i,k}(l) = q_{i,k}(l) / Q_i(k)` for
    /// `l ∈ 0..=horizon` as a borrowed, allocation-free [`HoldingPmf`] view,
    /// or `None` when the transition has zero estimated probability (H is
    /// then undefined).
    #[must_use]
    pub fn holding_pmf(&self, from: State, to: State) -> Option<HoldingPmf<'_>> {
        let i = SOURCES.iter().position(|&s| s == from)?;
        let k = target_index(i, to)?;
        let total = self.solver.q_total[i][k];
        if total <= 0.0 {
            return None;
        }
        Some(HoldingPmf {
            masses: &self.kernel[i][k],
            total,
        })
    }

    /// Builds parameters directly from a kernel (used by tests and the
    /// noise-free analytic fixtures).
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_kernel(step_secs: u32, kernel: [[Vec<f64>; 4]; 2]) -> SmpParams {
        let horizon = kernel[0][0].len().saturating_sub(1);
        for row in &kernel {
            for col in row {
                assert_eq!(col.len(), horizon + 1, "inconsistent kernel row lengths");
            }
        }
        SmpParams::from_parts(step_secs, horizon, kernel, [0, 0])
    }

    /// Internal constructor that (re)builds the derived solver view.
    fn from_parts(
        step_secs: u32,
        horizon: usize,
        kernel: [[Vec<f64>; 4]; 2],
        sojourns: [usize; 2],
    ) -> SmpParams {
        let solver = SolverKernel::build(&kernel, horizon);
        SmpParams {
            step_secs,
            horizon,
            kernel,
            sojourns,
            solver,
            hash: OnceLock::new(),
        }
    }

    /// FNV-1a hash of the estimate's content — the kernel-dedup lookup key.
    ///
    /// Hashes the compact solver view (the nonzero `(holding, mass)` events,
    /// which together with `horizon` determine the full kernel arrays) plus
    /// `step_secs` and the sojourn counts, word-wise over the `f64` bit
    /// patterns. Computed once on first use and memoized; equal content
    /// always hashes equal, and the dedup table falls back to full
    /// [`PartialEq`] on hash match, so collisions cost a comparison, never
    /// correctness.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        *self.hash.get_or_init(|| {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = OFFSET;
            let mut word = |w: u64| h = (h ^ w).wrapping_mul(PRIME);
            word(u64::from(self.step_secs));
            word(self.horizon as u64);
            word(self.sojourns[0] as u64);
            word(self.sojourns[1] as u64);
            for i in 0..2 {
                word(self.solver.trans[i].len() as u64);
                for &(l, v) in &self.solver.trans[i] {
                    word(l as u64);
                    word(v.to_bits());
                }
                for j in 0..3 {
                    word(self.solver.failures[i][j].len() as u64);
                    for &(l, v) in &self.solver.failures[i][j] {
                        word(l as u64);
                        word(v.to_bits());
                    }
                }
            }
            h
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use State::*;

    #[test]
    fn accumulator_identifies_completed_and_censored() {
        let w = [S1, S1, S2, S2, S2, S1];
        let mut acc = SojournAccumulator::new(6, 10);
        acc.push_window(&w);
        // S1 completes after 2 steps to S2; S2 completes after 3 steps to
        // S1; the trailing single-sample S1 run has no at-risk time.
        assert_eq!(acc.sojourn_counts(), [1, 1]);
        assert_eq!(acc.events[0][0][2], 1.0);
        assert_eq!(acc.events[1][0][3], 1.0);
    }

    #[test]
    fn accumulator_censors_trailing_run() {
        let w = [S1, S1, S1, S1];
        let mut acc = SojournAccumulator::new(6, 10);
        acc.push_window(&w);
        assert_eq!(acc.sojourn_counts(), [1, 0]);
        // Censored: at-risk for 3 steps, no event recorded anywhere.
        assert!(acc.events.iter().flatten().flatten().all(|&v| v == 0.0));
        assert_eq!(acc.risk_diff[0][1], 1);
        assert_eq!(acc.risk_diff[0][4], -1);
    }

    #[test]
    fn accumulator_skips_failure_runs() {
        let w = [S1, S3, S3, S2, S2];
        let mut acc = SojournAccumulator::new(6, 10);
        acc.push_window(&w);
        // S1 completes to S3 after 1 step; the S3 run is skipped; the S2
        // run is censored with 1 at-risk step.
        assert_eq!(acc.sojourn_counts(), [1, 1]);
        assert_eq!(acc.events[0][1][1], 1.0);
    }

    #[test]
    fn streaming_equals_batch_estimate() {
        let day_a: Vec<State> = (0..50)
            .map(|i| match i % 11 {
                0..=5 => S1,
                6..=8 => S2,
                _ => S3,
            })
            .collect();
        let day_b: Vec<State> = (0..50).map(|i| if i % 7 < 5 { S1 } else { S2 }).collect();
        let batch = SmpParams::estimate(&[&day_a, &day_b], 6, 49);
        let mut acc = SojournAccumulator::new(6, 49);
        acc.push_window(&day_a);
        acc.push_window(&day_b);
        let streamed = acc.finish();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn all_identical_window_yields_no_failure_mass() {
        let w = vec![S1; 101];
        let p = SmpParams::estimate(&[&w], 6, 100);
        for to in [S2, S3, S4, S5] {
            assert_eq!(p.q(S1, to), 0.0);
        }
        assert_eq!(p.sojourn_counts(), [1, 0]);
    }

    #[test]
    fn deterministic_transition_estimated_exactly() {
        // Every day: 5 steps of S1, then S3 for the rest (11 samples = 10 steps).
        let day: Vec<State> = (0..11).map(|i| if i < 5 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day, &day, &day];
        let p = SmpParams::estimate(&windows, 6, 10);
        assert!((p.q(S1, S3) - 1.0).abs() < 1e-12);
        let pmf = p.holding_pmf(S1, S3).unwrap();
        assert!((pmf.value(5) - 1.0).abs() < 1e-12);
        assert_eq!(p.kernel_at(S1, S3, 5), 1.0);
        assert_eq!(p.kernel_at(S1, S3, 4), 0.0);
    }

    #[test]
    fn censoring_prevents_overestimation() {
        // 8 quiet days (never leave S1) + 2 failing days (S1 -> S3 at step 5).
        let quiet = vec![S1; 11];
        let failing: Vec<State> = (0..11).map(|i| if i < 5 { S1 } else { S3 }).collect();
        let mut windows: Vec<&[State]> = vec![&quiet; 8];
        windows.push(&failing);
        windows.push(&failing);
        let p = SmpParams::estimate(&windows, 6, 10);
        // Naive completed-only estimation would give Q(S1->S3) = 1.0.
        // The product-limit estimate is the empirical hazard at step 5:
        // 2 events among 10 at risk -> Q = 0.2.
        assert!((p.q(S1, S3) - 0.2).abs() < 1e-9, "q = {}", p.q(S1, S3));
    }

    #[test]
    fn rows_are_subprobabilities() {
        let day: Vec<State> = (0..21)
            .map(|i| match i % 7 {
                0..=2 => S1,
                3..=4 => S2,
                _ => S1,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 20);
        for from in [S1, S2] {
            let total: f64 = [S1, S2, S3, S4, S5]
                .into_iter()
                .map(|to| p.q(from, to))
                .sum();
            assert!(total <= 1.0 + 1e-9, "row {from} sums to {total}");
        }
    }

    #[test]
    fn holding_pmf_sums_to_one_when_defined() {
        let day: Vec<State> = (0..31).map(|i| if i % 10 < 6 { S1 } else { S2 }).collect();
        let windows: Vec<&[State]> = vec![&day, &day];
        let p = SmpParams::estimate(&windows, 6, 30);
        if let Some(pmf) = p.holding_pmf(S1, S2) {
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
            assert_eq!(pmf.len(), 31);
            assert!(!pmf.is_empty());
        } else {
            panic!("expected S1->S2 transitions to be observed");
        }
    }

    #[test]
    fn holding_pmf_none_for_unobserved_transition() {
        let day = vec![S1; 11];
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 10);
        assert!(p.holding_pmf(S1, S5).is_none());
    }

    #[test]
    fn q_totals_match_row_sums() {
        let day: Vec<State> = (0..60)
            .map(|i| match i % 13 {
                0..=6 => S1,
                7..=9 => S2,
                10 => S4,
                _ => S1,
            })
            .collect();
        let p = SmpParams::estimate(&[&day], 6, 59);
        for from in [S1, S2] {
            for to in [S1, S2, S3, S4, S5] {
                if from == to {
                    continue;
                }
                let direct: f64 = (1..=p.horizon()).map(|l| p.kernel_at(from, to, l)).sum();
                assert_eq!(p.q(from, to).to_bits(), direct.to_bits());
            }
        }
    }

    #[test]
    fn solver_kernel_prefixes_match_cumulative_mass() {
        let day: Vec<State> = (0..80)
            .map(|i| match i % 17 {
                0..=9 => S1,
                10..=12 => S2,
                13 => S3,
                14 => S5,
                _ => S1,
            })
            .collect();
        let p = SmpParams::estimate(&[&day], 6, 79);
        let view = p.solver_kernel();
        for (i, from) in [S1, S2].into_iter().enumerate() {
            let dp = view.direct_prefix(i);
            for m in 0..=p.horizon() {
                for (j, to) in [S3, S4, S5].into_iter().enumerate() {
                    let cum: f64 = (1..=m).map(|l| p.kernel_at(from, to, l)).sum();
                    assert!(
                        (dp[3 * m + j] - cum).abs() < 1e-15,
                        "prefix mismatch at i={i} m={m} j={j}"
                    );
                }
            }
        }
        assert_eq!(
            view.nnz(),
            view.trans_events(0).len()
                + view.trans_events(1).len()
                + (0..2)
                    .flat_map(|i| (0..3).map(move |j| view.failures[i][j].len()))
                    .sum::<usize>()
        );
    }

    #[test]
    fn kernel_ignores_failure_sources_and_self_transitions() {
        let day: Vec<State> = (0..11).map(|i| if i < 5 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 10);
        assert_eq!(p.q(S3, S1), 0.0);
        assert_eq!(p.q(S1, S1), 0.0);
        assert_eq!(p.kernel_at(S5, S1, 3), 0.0);
    }

    #[test]
    fn empty_windows_give_empty_kernel() {
        let p = SmpParams::estimate(&[], 6, 10);
        assert_eq!(p.sojourn_counts(), [0, 0]);
        assert_eq!(p.q(S1, S3), 0.0);
    }

    #[test]
    fn horizon_caps_contributions() {
        // Transition at duration 8 with horizon 5: no event mass within horizon.
        let day: Vec<State> = (0..11).map(|i| if i < 8 { S1 } else { S3 }).collect();
        let windows: Vec<&[State]> = vec![&day];
        let p = SmpParams::estimate(&windows, 6, 5);
        assert_eq!(p.q(S1, S3), 0.0);
        assert_eq!(p.horizon(), 5);
    }

    #[test]
    fn from_kernel_round_trips() {
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; 6];
            }
        }
        kernel[0][1][3] = 0.25; // q_{S1,S3}(3)
        let p = SmpParams::from_kernel(6, kernel);
        assert_eq!(p.horizon(), 5);
        assert_eq!(p.kernel_at(S1, S3, 3), 0.25);
        assert_eq!(p.q(S1, S3), 0.25);
    }

    #[test]
    fn json_round_trip_rebuilds_solver_view() {
        let day: Vec<State> = (0..40).map(|i| if i % 9 < 6 { S1 } else { S2 }).collect();
        let p = SmpParams::estimate(&[&day], 6, 39);
        let text = fgcs_runtime::json::to_string(&p);
        let back: SmpParams = fgcs_runtime::json::from_str(&text).unwrap();
        assert_eq!(p, back);
        assert_eq!(p.solver_kernel(), back.solver_kernel());
    }

    #[test]
    fn content_hash_tracks_equality() {
        let day: Vec<State> = (0..40).map(|i| if i % 9 < 6 { S1 } else { S2 }).collect();
        let a = SmpParams::estimate(&[&day], 6, 39);
        let b = SmpParams::estimate(&[&day], 6, 39);
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        // Memoized: repeated calls return the same value.
        assert_eq!(a.content_hash(), a.content_hash());
        // Different step size → different content (and, here, hash).
        let c = SmpParams::estimate(&[&day], 12, 39);
        assert_ne!(a, c);
        assert_ne!(a.content_hash(), c.content_hash());
        // A JSON round trip (fresh OnceLock) preserves both equality and
        // hash even when one side has already memoized.
        let text = fgcs_runtime::json::to_string(&a);
        let back: SmpParams = fgcs_runtime::json::from_str(&text).unwrap();
        assert_eq!(a, back);
        assert_eq!(a.content_hash(), back.content_hash());
    }

    #[test]
    fn json_rejects_inconsistent_kernel_rows() {
        let day: Vec<State> = (0..20).map(|i| if i % 3 == 0 { S2 } else { S1 }).collect();
        let p = SmpParams::estimate(&[&day], 6, 19);
        let text = fgcs_runtime::json::to_string(&p);
        let bad = text.replace("\"horizon\":19", "\"horizon\":7");
        assert!(fgcs_runtime::json::from_str::<SmpParams>(&bad).is_err());
    }
}
