//! The production Eq.-3 solver: SoA interval streams, reusable scratch
//! arenas, and O(1) holding-time terms.
//!
//! The paper-order [`super::solver::SparseSolver`] remains the bitwise
//! oracle; this module is where queries actually run. It restructures the
//! same recursion around three ideas:
//!
//! 1. **One contiguous arena.** The six interval-probability streams
//!    `P_{i,j}(m)` live in a single [`SolveScratch`] allocation as two
//!    triple-interleaved planes (`plane[3·m + j]`), so each convolution
//!    term loads one cache line holding all three targets and a
//!    steady-state solve allocates nothing.
//! 2. **O(1) direct-failure terms.** The inner sum
//!    `Σ_{l ≤ m} q_{i,S(3+j)}(l)` is a prefix-sum lookup precomputed in
//!    [`SmpParams`] ([`SolverKernel`](super::params) `direct_prefix`),
//!    removing one of the two event scans per step.
//! 3. **Event-cursor convolution.** The remaining operational-transition
//!    convolution scans the sorted `(holding, mass)` event list once per
//!    step for all three targets at a time (the paper-order solvers scan
//!    per target), with a cursor bounding the `l ≤ m` range instead of a
//!    per-event branch.
//!
//! The summation differs from the paper's interleaved `l = 1..=m` order
//! only by floating-point association: direct mass first, then the
//! transition events accumulated across four independent lanes (which
//! hides the add latency a single running sum serializes on). The
//! divergence is property-tested to stay within the 1e-12 unit-scale
//! error budget at every horizon (`tests/properties.rs`), and
//! `bench_smoke` re-asserts the bound before trusting any timing.

use std::cell::RefCell;

use crate::batch::TrCurve;
use crate::error::CoreError;
use crate::state::State;

use super::params::SmpParams;
use super::solver::IntervalProbs;

/// A reusable solve arena: one contiguous `f64` buffer that holds every
/// stream a solve writes. Reusing one scratch across solves makes the
/// steady state allocation-free (asserted by `tests/alloc_free.rs`); the
/// buffer only grows, to the largest horizon seen.
#[derive(Debug, Default)]
pub struct SolveScratch {
    buf: Vec<f64>,
}

/// Borrowed view of the six interval-probability streams of one solve:
/// two triple-interleaved planes, `p1[3·m + j] = P_{S1,S(3+j)}(m)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntervalStreams<'s> {
    steps: usize,
    p1: &'s [f64],
    p2: &'s [f64],
}

impl IntervalStreams<'_> {
    /// The six probabilities at horizon `m ≤ steps`.
    pub(crate) fn probs_at(&self, m: usize) -> IntervalProbs {
        debug_assert!(m <= self.steps);
        let b = 3 * m;
        IntervalProbs {
            p1: [self.p1[b], self.p1[b + 1], self.p1[b + 2]],
            p2: [self.p2[b], self.p2[b + 1], self.p2[b + 2]],
        }
    }
}

impl SolveScratch {
    /// Creates an empty scratch; the first solve sizes it.
    #[must_use]
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }

    /// Capacity in `f64` slots (diagnostics).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Two zeroed interleaved planes of `3·(steps + 1)` slots each.
    fn planes(&mut self, steps: usize) -> (&mut [f64], &mut [f64]) {
        let n = 3 * (steps + 1);
        if self.buf.len() < 2 * n {
            self.buf.resize(2 * n, 0.0);
        }
        let (p1, rest) = self.buf[..2 * n].split_at_mut(n);
        p1.fill(0.0);
        rest.fill(0.0);
        (p1, rest)
    }

    /// Six zeroed planar streams of `steps + 1` slots each (the layout the
    /// batched paper-order solver uses).
    pub(crate) fn six_planes(&mut self, steps: usize) -> [&mut [f64]; 6] {
        let n = steps + 1;
        if self.buf.len() < 6 * n {
            self.buf.resize(6 * n, 0.0);
        }
        let mut chunks = self.buf[..6 * n].chunks_exact_mut(n);
        std::array::from_fn(|_| {
            let plane = chunks.next().expect("exactly six planes");
            plane.fill(0.0);
            plane
        })
    }
}

/// One convolution step for all three failure targets of one source:
/// `direct[j] + Σ_events q · other[3·(m−l) + j]`, over the events with
/// `l ≤ m`. Four independent partial accumulators per target hide the
/// floating-point add latency that a single running sum serializes on;
/// they are combined pairwise at the end. The reassociation (relative to
/// a strict ascending-event sum) is part of the module's 1e-12 error
/// budget against the paper-order oracle.
// lint: no-alloc
#[inline]
fn convolve3(events: &[(usize, f64)], other: &[f64], m: usize, direct: [f64; 3]) -> [f64; 3] {
    let [mut a0, mut a1, mut a2] = direct;
    let (mut b0, mut b1, mut b2) = (0.0f64, 0.0f64, 0.0f64);
    let (mut c0, mut c1, mut c2) = (0.0f64, 0.0f64, 0.0f64);
    let (mut e0, mut e1, mut e2) = (0.0f64, 0.0f64, 0.0f64);
    let mut chunks = events.chunks_exact(4);
    for ch in chunks.by_ref() {
        let oa = 3 * (m - ch[0].0);
        let ob = 3 * (m - ch[1].0);
        let oc = 3 * (m - ch[2].0);
        let oe = 3 * (m - ch[3].0);
        let pa = &other[oa..oa + 3];
        let pb = &other[ob..ob + 3];
        let pc = &other[oc..oc + 3];
        let pe = &other[oe..oe + 3];
        a0 += ch[0].1 * pa[0];
        a1 += ch[0].1 * pa[1];
        a2 += ch[0].1 * pa[2];
        b0 += ch[1].1 * pb[0];
        b1 += ch[1].1 * pb[1];
        b2 += ch[1].1 * pb[2];
        c0 += ch[2].1 * pc[0];
        c1 += ch[2].1 * pc[1];
        c2 += ch[2].1 * pc[2];
        e0 += ch[3].1 * pe[0];
        e1 += ch[3].1 * pe[1];
        e2 += ch[3].1 * pe[2];
    }
    for &(l, q) in chunks.remainder() {
        let o = 3 * (m - l);
        let p = &other[o..o + 3];
        a0 += q * p[0];
        a1 += q * p[1];
        a2 += q * p[2];
    }
    [
        (a0 + b0) + (c0 + e0),
        (a1 + b1) + (c1 + e1),
        (a2 + b2) + (c2 + e2),
    ]
}

thread_local! {
    static THREAD_SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// Runs `f` with this thread's reusable [`SolveScratch`]. Parallel cluster
/// sweeps get one scratch per worker thread for free; re-entrant calls
/// (solver inside solver) fall back to a fresh arena.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut SolveScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SolveScratch::new()),
    })
}

/// The fast Eq.-3 solver over a precomputed [`SmpParams`] kernel view.
///
/// Construction is free (the event lists and prefix sums already live in
/// the params, shared through the `QhCache`'s `Arc`); a solve costs
/// `O(steps · nnz)` with no allocation when given a warm scratch.
#[derive(Debug, Clone, Copy)]
pub struct FastSolver<'a> {
    params: &'a SmpParams,
}

impl<'a> FastSolver<'a> {
    /// Wraps the estimated parameters.
    #[must_use]
    pub fn new(params: &'a SmpParams) -> FastSolver<'a> {
        FastSolver { params }
    }

    /// The horizon the kernel resolves.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.params.horizon()
    }

    fn check_horizon(&self, steps: usize) -> Result<(), CoreError> {
        if steps > self.params.horizon() {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.params.horizon(),
            });
        }
        Ok(())
    }

    /// Runs the recursion into the scratch planes and returns the stream
    /// view. The caller has already validated `steps`.
    // lint: no-alloc
    fn run<'s>(&self, scratch: &'s mut SolveScratch, steps: usize) -> IntervalStreams<'s> {
        fgcs_runtime::counter_add!("core.solver.fast_runs", 1);
        fgcs_runtime::counter_add!("core.solver.fast_steps", steps as u64);
        let view = self.params.solver_kernel();
        let ev1 = view.trans_events(0);
        let ev2 = view.trans_events(1);
        let d1 = view.direct_prefix(0);
        let d2 = view.direct_prefix(1);
        let (p1, p2) = scratch.planes(steps);
        // Cursors bounding the `holding ≤ m` prefix of each event list.
        let mut end1 = 0usize;
        let mut end2 = 0usize;
        for m in 1..=steps {
            while end1 < ev1.len() && ev1[end1].0 <= m {
                end1 += 1;
            }
            while end2 < ev2.len() && ev2[end2].0 <= m {
                end2 += 1;
            }
            let b = 3 * m;
            // Direct-failure mass: one prefix-sum load per target.
            let acc1 = convolve3(&ev1[..end1], p2, m, [d1[b], d1[b + 1], d1[b + 2]]);
            let acc2 = convolve3(&ev2[..end2], p1, m, [d2[b], d2[b + 1], d2[b + 2]]);
            p1[b] = acc1[0].clamp(0.0, 1.0);
            p1[b + 1] = acc1[1].clamp(0.0, 1.0);
            p1[b + 2] = acc1[2].clamp(0.0, 1.0);
            p2[b] = acc2[0].clamp(0.0, 1.0);
            p2[b + 1] = acc2[1].clamp(0.0, 1.0);
            p2[b + 2] = acc2[2].clamp(0.0, 1.0);
        }
        IntervalStreams { steps, p1, p2 }
    }

    /// The six interval transition probabilities at horizon `steps`, using
    /// the caller's scratch (allocation-free when warm).
    pub fn interval_probabilities_with(
        &self,
        scratch: &mut SolveScratch,
        steps: usize,
    ) -> Result<IntervalProbs, CoreError> {
        self.check_horizon(steps)?;
        let streams = self.run(scratch, steps);
        Ok(streams.probs_at(steps))
    }

    /// The six interval transition probabilities at horizon `steps`, using
    /// the thread-local scratch.
    pub fn interval_probabilities(&self, steps: usize) -> Result<IntervalProbs, CoreError> {
        with_thread_scratch(|scratch| self.interval_probabilities_with(scratch, steps))
    }

    /// Temporal reliability `TR = 1 − Σ_j P_{init,j}(steps)` with the
    /// caller's scratch: the zero-allocation steady-state query.
    pub fn temporal_reliability_with(
        &self,
        scratch: &mut SolveScratch,
        init: State,
        steps: usize,
    ) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let probs = self.interval_probabilities_with(scratch, steps)?;
        Ok((1.0 - probs.failure_probability(init)).clamp(0.0, 1.0))
    }

    /// Temporal reliability with the thread-local scratch.
    pub fn temporal_reliability(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        with_thread_scratch(|scratch| self.temporal_reliability_with(scratch, init, steps))
    }

    /// The materialized [`TrCurve`] for both operational initial states
    /// from one run, allocating only the two output curves.
    pub fn tr_curve_with(
        &self,
        scratch: &mut SolveScratch,
        steps: usize,
    ) -> Result<TrCurve, CoreError> {
        self.check_horizon(steps)?;
        let streams = self.run(scratch, steps);
        Ok(TrCurve::from_interleaved(
            self.params.step_secs(),
            streams.p1,
            streams.p2,
            steps,
        ))
    }

    /// [`TrCurve`] with the thread-local scratch.
    pub fn tr_curve(&self, steps: usize) -> Result<TrCurve, CoreError> {
        with_thread_scratch(|scratch| self.tr_curve_with(scratch, steps))
    }

    /// The whole reliability curve `TR(m)` for `m = 0..=steps` from one
    /// initial state.
    pub fn reliability_curve(&self, init: State, steps: usize) -> Result<Vec<f64>, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        self.check_horizon(steps)?;
        with_thread_scratch(|scratch| {
            let streams = self.run(scratch, steps);
            let p = match init {
                State::S1 => streams.p1,
                _ => streams.p2,
            };
            Ok((0..=steps)
                .map(|m| {
                    let b = 3 * m;
                    (1.0 - (p[b] + p[b + 1] + p[b + 2])).clamp(0.0, 1.0)
                })
                .collect())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::solver::SparseSolver;
    use State::*;

    fn estimated_params() -> SmpParams {
        let day: Vec<State> = (0..400)
            .map(|i| match i % 53 {
                0..=24 => S1,
                25..=39 => S2,
                40..=44 => S3,
                45..=48 => S1,
                _ => S5,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        SmpParams::estimate(&windows, 6, 399)
    }

    /// The unit-scale error budget the fast path guarantees against the
    /// paper-order oracle.
    fn within_budget(fast: f64, oracle: f64) -> bool {
        (fast - oracle).abs() <= 1e-12 * oracle.abs().max(1.0)
    }

    #[test]
    fn matches_paper_oracle_within_budget() {
        let params = estimated_params();
        let fast = FastSolver::new(&params);
        let oracle = SparseSolver::new(&params);
        for init in [S1, S2] {
            for steps in [0usize, 1, 7, 50, 200, 399] {
                let f = fast.temporal_reliability(init, steps).unwrap();
                let o = oracle.temporal_reliability(init, steps).unwrap();
                assert!(within_budget(f, o), "init {init} steps {steps}: {f} vs {o}");
            }
        }
    }

    #[test]
    fn explicit_scratch_matches_thread_scratch() {
        let params = estimated_params();
        let fast = FastSolver::new(&params);
        let mut scratch = SolveScratch::new();
        for steps in [0usize, 13, 399] {
            let a = fast
                .temporal_reliability_with(&mut scratch, S1, steps)
                .unwrap();
            let b = fast.temporal_reliability(S1, steps).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_horizons() {
        // A long solve followed by a short one must not see stale values.
        let params = estimated_params();
        let fast = FastSolver::new(&params);
        let mut scratch = SolveScratch::new();
        let long = fast
            .temporal_reliability_with(&mut scratch, S1, 399)
            .unwrap();
        let short = fast
            .temporal_reliability_with(&mut scratch, S1, 50)
            .unwrap();
        let mut fresh = SolveScratch::new();
        let short_fresh = fast.temporal_reliability_with(&mut fresh, S1, 50).unwrap();
        assert_eq!(short.to_bits(), short_fresh.to_bits());
        assert!(long <= short);
    }

    #[test]
    fn curves_match_reliability_curve_and_oracle() {
        let params = estimated_params();
        let fast = FastSolver::new(&params);
        let oracle = SparseSolver::new(&params);
        let curve = fast.tr_curve(200).unwrap();
        let direct = fast.reliability_curve(S1, 200).unwrap();
        let oracle_curve = oracle.reliability_curve(S1, 200).unwrap();
        for m in 0..=200usize {
            assert_eq!(curve.tr(S1, m).unwrap().to_bits(), direct[m].to_bits());
            assert!(within_budget(direct[m], oracle_curve[m]), "m = {m}");
        }
    }

    #[test]
    fn rejects_failure_init_and_long_horizons() {
        let params = estimated_params();
        let fast = FastSolver::new(&params);
        assert!(matches!(
            fast.temporal_reliability(S3, 10),
            Err(CoreError::FailureInitialState(S3))
        ));
        assert!(matches!(
            fast.temporal_reliability(S1, 400),
            Err(CoreError::HorizonTooLong {
                requested: 400,
                available: 399
            })
        ));
        assert!(fast.reliability_curve(S5, 10).is_err());
        assert!(fast.tr_curve(400).is_err());
    }

    #[test]
    fn empty_kernel_gives_unit_reliability_without_growth() {
        let params = SmpParams::estimate(&[], 6, 100);
        let fast = FastSolver::new(&params);
        let mut scratch = SolveScratch::new();
        assert_eq!(
            fast.temporal_reliability_with(&mut scratch, S1, 100)
                .unwrap(),
            1.0
        );
        let cap = scratch.capacity();
        assert_eq!(
            fast.temporal_reliability_with(&mut scratch, S2, 100)
                .unwrap(),
            1.0
        );
        assert_eq!(scratch.capacity(), cap, "warm solve must not reallocate");
    }
}
