//! A general dense interval-transition solver over all five states.
//!
//! This implements the full discrete-time SMP interval transition equation
//! (paper Eq. 2, before sparsity is applied):
//!
//! ```text
//! P_{i,j}(m) = δ_{ij} · W_i(m) + Σ_{l=1..m} Σ_k q_{i,k}(l) · P_{k,j}(m-l)
//! ```
//!
//! where `W_i(m) = 1 - Σ_{l≤m} Σ_k q_{i,k}(l)` is the probability the first
//! sojourn in `i` is still in progress at `m`. Failure states have empty
//! kernel rows and are therefore absorbing.
//!
//! The dense solver exists (a) to cross-validate the sparse Eq.-3 solver —
//! they must agree exactly on the six probabilities the sparse solver
//! computes — and (b) as the ablation baseline quantifying what the paper's
//! §5.3 sparsity optimisation buys.

use crate::error::CoreError;
use crate::state::State;

use super::params::SmpParams;

/// Dense 5-state interval transition probabilities.
#[derive(Debug, Clone)]
pub struct DenseSolver {
    /// `kernel[i][k][l]` over the full 5×5 state space (failure rows zero).
    kernel: Vec<Vec<Vec<f64>>>,
    horizon: usize,
}

impl DenseSolver {
    /// Expands the sparse parameters into a full 5×5 kernel.
    #[must_use]
    #[allow(clippy::needless_range_loop)]
    pub fn from_params(params: &SmpParams) -> DenseSolver {
        let horizon = params.horizon();
        let mut kernel = vec![vec![vec![0.0; horizon + 1]; 5]; 5];
        for from in State::OPERATIONAL {
            for to in State::ALL {
                for l in 1..=horizon {
                    kernel[from.index()][to.index()][l] = params.kernel_at(from, to, l);
                }
            }
        }
        DenseSolver { kernel, horizon }
    }

    /// The horizon (in steps) this solver can compute to.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Computes the full interval transition matrix `P(m)` for
    /// `m = 0..=steps`; returns `probs[m][i][j]`.
    // Index-based loops mirror the paper's matrix equations more readably
    // than iterator chains over four nesting levels.
    #[allow(clippy::needless_range_loop)]
    pub fn interval_matrix(&self, steps: usize) -> Result<Vec<[[f64; 5]; 5]>, CoreError> {
        if steps > self.horizon {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.horizon,
            });
        }
        // Sojourn-survival term W_i(m).
        let mut survival = vec![[1.0_f64; 5]; steps + 1];
        for i in 0..5 {
            let mut cumulative = 0.0;
            for (m, surv) in survival.iter_mut().enumerate().skip(1) {
                for k in 0..5 {
                    cumulative += self.kernel[i][k][m];
                }
                surv[i] = (1.0 - cumulative).max(0.0);
            }
        }

        let mut probs = vec![[[0.0_f64; 5]; 5]; steps + 1];
        for i in 0..5 {
            probs[0][i][i] = 1.0;
        }
        for m in 1..=steps {
            for i in 0..5 {
                for j in 0..5 {
                    let mut acc = if i == j { survival[m][i] } else { 0.0 };
                    for l in 1..=m {
                        for k in 0..5 {
                            let q = self.kernel[i][k][l];
                            if q != 0.0 {
                                acc += q * probs[m - l][k][j];
                            }
                        }
                    }
                    probs[m][i][j] = acc.clamp(0.0, 1.0);
                }
            }
        }
        Ok(probs)
    }

    /// Temporal reliability computed densely:
    /// `TR = 1 - Σ_{j∈{3,4,5}} P_{init,j}(steps)`.
    pub fn temporal_reliability(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let probs = self.interval_matrix(steps)?;
        let row = &probs[steps][init.index()];
        let fail: f64 = State::FAILURE.iter().map(|s| row[s.index()]).sum();
        Ok((1.0 - fail).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::solver::SparseSolver;
    use State::*;

    fn rich_kernel(horizon: usize) -> SmpParams {
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; horizon + 1];
            }
        }
        // S1 row: [S2, S3, S4, S5]
        kernel[0][0][2] = 0.35;
        kernel[0][0][5] = 0.15;
        kernel[0][1][4] = 0.08;
        kernel[0][2][7] = 0.04;
        kernel[0][3][9] = 0.02;
        // S2 row: [S1, S3, S4, S5]
        kernel[1][0][3] = 0.5;
        kernel[1][1][2] = 0.12;
        kernel[1][2][6] = 0.05;
        kernel[1][3][8] = 0.03;
        SmpParams::from_kernel(6, kernel)
    }

    #[test]
    fn rows_of_interval_matrix_sum_to_one() {
        let params = rich_kernel(30);
        let dense = DenseSolver::from_params(&params);
        let probs = dense.interval_matrix(30).unwrap();
        for (m, mat) in probs.iter().enumerate() {
            for (i, row) in mat.iter().enumerate() {
                let total: f64 = row.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "row {i} at m={m} sums to {total}"
                );
            }
        }
    }

    #[test]
    fn failure_states_are_absorbing() {
        let params = rich_kernel(20);
        let dense = DenseSolver::from_params(&params);
        let probs = dense.interval_matrix(20).unwrap();
        for s in State::FAILURE {
            let i = s.index();
            for mat in &probs {
                assert_eq!(mat[i][i], 1.0);
            }
        }
    }

    #[test]
    fn dense_matches_sparse_on_all_six_probabilities() {
        let params = rich_kernel(30);
        let dense = DenseSolver::from_params(&params);
        let sparse = SparseSolver::new(&params);
        for steps in [0, 1, 5, 17, 30] {
            let mat = dense.interval_matrix(steps).unwrap();
            let six = sparse.interval_probabilities(steps).unwrap();
            for (j, fail) in State::FAILURE.iter().enumerate() {
                let want1 = mat[steps][S1.index()][fail.index()];
                let want2 = mat[steps][S2.index()][fail.index()];
                assert!(
                    (six.p1[j] - want1).abs() < 1e-9,
                    "P(1,{fail}) at {steps}: sparse {} dense {want1}",
                    six.p1[j]
                );
                assert!(
                    (six.p2[j] - want2).abs() < 1e-9,
                    "P(2,{fail}) at {steps}: sparse {} dense {want2}",
                    six.p2[j]
                );
            }
        }
    }

    #[test]
    fn dense_and_sparse_reliability_agree_on_estimated_kernel() {
        use crate::smp::params::SmpParams;
        // Estimate from a synthetic structured day.
        let day: Vec<State> = (0..200)
            .map(|i| match i % 37 {
                0..=19 => S1,
                20..=29 => S2,
                30..=33 => S3,
                _ => S1,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        let params = SmpParams::estimate(&windows, 6, 100);
        let dense = DenseSolver::from_params(&params);
        let sparse = SparseSolver::new(&params);
        for init in [S1, S2] {
            for steps in [10, 50, 100] {
                let a = dense.temporal_reliability(init, steps).unwrap();
                let b = sparse.temporal_reliability(init, steps).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "init {init} steps {steps}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn dense_rejects_failure_init_and_long_horizon() {
        let params = rich_kernel(10);
        let dense = DenseSolver::from_params(&params);
        assert!(dense.temporal_reliability(S4, 5).is_err());
        assert!(dense.temporal_reliability(S1, 11).is_err());
    }
}
