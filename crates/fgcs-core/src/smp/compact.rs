//! A holding-time-sparse variant of the Eq.-3 solver.
//!
//! The paper's recursion (implemented verbatim in
//! [`super::solver::SparseSolver`]) costs `O((T/d)²)` — the superlinear
//! growth its Figure 4 measures. Kernels *estimated from history logs*,
//! however, are extremely sparse in the holding-time dimension: only the
//! durations at which a transition was actually observed carry mass, and a
//! few weeks of windows produce hundreds of distinct durations, not
//! thousands. This solver stores the kernel as `(holding, mass)` event
//! lists and runs the same recursion in `O((T/d) · nnz)`.
//!
//! It produces *bit-identical sums up to floating-point association* with
//! the paper solver (property-tested equality to 1e-9) and exists as an
//! engineering extension: the experiment harness sweeps tens of thousands
//! of windows, which the quadratic solver would make needlessly slow. The
//! `ablation` bench quantifies the gap.

use crate::error::CoreError;
use crate::state::State;

use super::params::SmpParams;
use super::solver::IntervalProbs;

/// Event list of one (source, target) pair: `(holding, mass)` entries.
type EventList = Vec<(usize, f64)>;

/// Event-list form of the sparse kernel.
#[derive(Debug, Clone)]
pub struct CompactSolver {
    /// `events[i][k]` = list of `(holding, q value)` with nonzero mass;
    /// `i ∈ {S1, S2}`, `k ∈ {other, S3, S4, S5}`.
    events: [[EventList; 4]; 2],
    horizon: usize,
    step_secs: u32,
}

impl CompactSolver {
    /// Builds the event lists from estimated parameters.
    #[must_use]
    pub fn from_params(params: &SmpParams) -> CompactSolver {
        let horizon = params.horizon();
        let mut events: [[EventList; 4]; 2] = Default::default();
        for (i, row) in events.iter_mut().enumerate() {
            let kernel_row = params.row(i);
            for (k, list) in row.iter_mut().enumerate() {
                for (l, &v) in kernel_row[k].iter().enumerate() {
                    if v != 0.0 {
                        list.push((l, v));
                    }
                }
            }
        }
        CompactSolver {
            events,
            horizon,
            step_secs: params.step_secs(),
        }
    }

    /// Total number of nonzero kernel entries (the `nnz` in the cost).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.events
            .iter()
            .flat_map(|row| row.iter())
            .map(Vec::len)
            .sum()
    }

    /// The horizon the kernel resolves.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Runs the recursion; returns the six per-step probability curves.
    fn run(&self, steps: usize) -> Result<super::solver::SixCurves, CoreError> {
        if steps > self.horizon {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.horizon,
            });
        }
        fgcs_runtime::counter_add!("core.solver.compact_runs", 1);
        fgcs_runtime::counter_add!("core.solver.compact_steps", steps as u64);
        // Each step m scans at most every event list once: the
        // O(steps · nnz) cost this solver exists to achieve.
        fgcs_runtime::counter_add!(
            "core.solver.compact_iterations",
            (steps as u64) * self.nnz() as u64
        );
        let mut p1: [Vec<f64>; 3] = [
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
        ];
        let mut p2: [Vec<f64>; 3] = [
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
        ];
        // Cumulative direct-failure mass Σ_{l<=m} q_{i,j}(l), maintained
        // incrementally with event cursors.
        let mut direct1 = [0.0_f64; 3];
        let mut direct2 = [0.0_f64; 3];
        let mut cur1 = [0usize; 3];
        let mut cur2 = [0usize; 3];

        for m in 1..=steps {
            for j in 0..3 {
                // Advance the direct-mass cursors to holding times <= m.
                let list = &self.events[0][j + 1];
                while cur1[j] < list.len() && list[cur1[j]].0 <= m {
                    direct1[j] += list[cur1[j]].1;
                    cur1[j] += 1;
                }
                let list = &self.events[1][j + 1];
                while cur2[j] < list.len() && list[cur2[j]].0 <= m {
                    direct2[j] += list[cur2[j]].1;
                    cur2[j] += 1;
                }
                // Convolution with the other-operational transition events.
                let mut acc1 = direct1[j];
                for &(l, q) in &self.events[0][0] {
                    if l > m {
                        break;
                    }
                    acc1 += q * p2[j][m - l];
                }
                let mut acc2 = direct2[j];
                for &(l, q) in &self.events[1][0] {
                    if l > m {
                        break;
                    }
                    acc2 += q * p1[j][m - l];
                }
                p1[j][m] = acc1.clamp(0.0, 1.0);
                p2[j][m] = acc2.clamp(0.0, 1.0);
            }
        }
        Ok((p1, p2))
    }

    /// The six interval transition probabilities at horizon `steps`.
    pub fn interval_probabilities(&self, steps: usize) -> Result<IntervalProbs, CoreError> {
        let (p1, p2) = self.run(steps)?;
        Ok(IntervalProbs {
            p1: [p1[0][steps], p1[1][steps], p1[2][steps]],
            p2: [p2[0][steps], p2[1][steps], p2[2][steps]],
        })
    }

    /// Temporal reliability, identical in value to
    /// [`super::solver::SparseSolver::temporal_reliability`].
    pub fn temporal_reliability(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let probs = self.interval_probabilities(steps)?;
        // Mass outside [0,1] before the final clamp is the recursion's
        // numerical drift — exported as the convergence residual.
        let raw: f64 = match init {
            State::S1 => probs.p1.iter().sum(),
            _ => probs.p2.iter().sum(),
        };
        fgcs_runtime::gauge_set!(
            "core.solver.compact_last_residual",
            (raw - raw.clamp(0.0, 1.0)).abs()
        );
        Ok((1.0 - probs.failure_probability(init)).clamp(0.0, 1.0))
    }

    /// The materialized [`TrCurve`](crate::batch::TrCurve) for both
    /// operational initial states from a single recursion run — the
    /// event-list-speed counterpart of
    /// [`crate::batch::BatchSolver::tr_curve`] for production query paths
    /// that do not need bit-identicality with the paper-order solver.
    pub fn tr_curve(&self, steps: usize) -> Result<crate::batch::TrCurve, CoreError> {
        let (p1, p2) = self.run(steps)?;
        Ok(crate::batch::TrCurve::from_raw_curves(
            self.step_secs,
            &p1,
            &p2,
        ))
    }

    /// The whole reliability curve `TR(m)` for `m = 0..=steps`.
    pub fn reliability_curve(&self, init: State, steps: usize) -> Result<Vec<f64>, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let (p1, p2) = self.run(steps)?;
        let row = match init {
            State::S1 => &p1,
            _ => &p2,
        };
        Ok((0..=steps)
            .map(|m| (1.0 - (row[0][m] + row[1][m] + row[2][m])).clamp(0.0, 1.0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::solver::SparseSolver;
    use State::*;

    fn estimated_params() -> SmpParams {
        // A structured day with churn and failures.
        let day: Vec<State> = (0..400)
            .map(|i| match i % 53 {
                0..=24 => S1,
                25..=39 => S2,
                40..=44 => S3,
                45..=48 => S1,
                _ => S5,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        SmpParams::estimate(&windows, 6, 399)
    }

    #[test]
    fn matches_paper_solver_on_estimated_kernel() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        let paper = SparseSolver::new(&params);
        for init in [S1, S2] {
            for steps in [0usize, 1, 10, 100, 399] {
                let a = compact.temporal_reliability(init, steps).unwrap();
                let b = paper.temporal_reliability(init, steps).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "init {init} steps {steps}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn curves_match_paper_solver() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        let paper = SparseSolver::new(&params);
        let a = compact.reliability_curve(S1, 200).unwrap();
        let b = paper.reliability_curve(S1, 200).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn nnz_is_small_for_estimated_kernels() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        assert!(compact.nnz() > 0);
        assert!(
            compact.nnz() < 50,
            "periodic day should produce few distinct durations, got {}",
            compact.nnz()
        );
    }

    #[test]
    fn rejects_failure_init_and_long_horizons() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        assert!(compact.temporal_reliability(S4, 10).is_err());
        assert!(compact.temporal_reliability(S1, 400).is_err());
    }

    #[test]
    fn empty_kernel_gives_unit_reliability() {
        let params = SmpParams::estimate(&[], 6, 100);
        let compact = CompactSolver::from_params(&params);
        assert_eq!(compact.temporal_reliability(S1, 100).unwrap(), 1.0);
        assert_eq!(compact.nnz(), 0);
    }
}
