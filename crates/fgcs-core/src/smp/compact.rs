//! A holding-time-sparse variant of the Eq.-3 solver.
//!
//! The paper's recursion (implemented verbatim in
//! [`super::solver::SparseSolver`]) costs `O((T/d)²)` — the superlinear
//! growth its Figure 4 measures. Kernels *estimated from history logs*,
//! however, are extremely sparse in the holding-time dimension: only the
//! durations at which a transition was actually observed carry mass, and a
//! few weeks of windows produce hundreds of distinct durations, not
//! thousands. Exploiting that, the recursion runs in `O((T/d) · nnz)` over
//! `(holding, mass)` event lists.
//!
//! Historically this type owned its event lists (rebuilt per solver from
//! the kernel arrays) and six per-stream `Vec<f64>` curves per run. Both
//! now live elsewhere: the event lists and direct-failure prefix sums are
//! precomputed once in [`SmpParams`] (so `from_params` is free and cached
//! `Arc<SmpParams>` clones share them), and the curves live in the
//! contiguous [`SolveScratch`](super::fast::SolveScratch) arena of
//! [`super::fast::FastSolver`], to which every method here delegates.
//! `CompactSolver` remains as the stable event-list-solver API; it produces
//! the same values as the fast path by construction (they are the same
//! kernel), property-tested against the paper solver to 1e-9.

use crate::error::CoreError;
use crate::state::State;

use super::fast::FastSolver;
use super::params::SmpParams;
use super::solver::IntervalProbs;

/// Event-list view of the sparse kernel: a borrowing façade over the
/// precomputed [`SmpParams`] solver view and the fast recursion.
#[derive(Debug, Clone, Copy)]
pub struct CompactSolver<'a> {
    params: &'a SmpParams,
}

impl<'a> CompactSolver<'a> {
    /// Wraps the estimated parameters. Free: the event lists were already
    /// built when the parameters were estimated (or deserialized).
    #[must_use]
    pub fn from_params(params: &'a SmpParams) -> CompactSolver<'a> {
        CompactSolver { params }
    }

    /// Total number of nonzero kernel entries (the `nnz` in the cost).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.params.solver_kernel().nnz()
    }

    /// The horizon the kernel resolves.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.params.horizon()
    }

    fn record_run(&self, steps: usize) {
        fgcs_runtime::counter_add!("core.solver.compact_runs", 1);
        fgcs_runtime::counter_add!("core.solver.compact_steps", steps as u64);
        // Each step m scans at most every event list once: the
        // O(steps · nnz) cost this solver exists to achieve.
        fgcs_runtime::counter_add!(
            "core.solver.compact_iterations",
            (steps as u64) * self.nnz() as u64
        );
    }

    /// The six interval transition probabilities at horizon `steps`.
    pub fn interval_probabilities(&self, steps: usize) -> Result<IntervalProbs, CoreError> {
        self.record_run(steps);
        FastSolver::new(self.params).interval_probabilities(steps)
    }

    /// Temporal reliability, equal in value to
    /// [`super::solver::SparseSolver::temporal_reliability`] within the
    /// fast path's 1e-12 unit-scale error budget.
    pub fn temporal_reliability(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let probs = self.interval_probabilities(steps)?;
        // Mass outside [0,1] before the final clamp is the recursion's
        // numerical drift — exported as the convergence residual.
        let raw: f64 = match init {
            State::S1 => probs.p1.iter().sum(),
            _ => probs.p2.iter().sum(),
        };
        fgcs_runtime::gauge_set!(
            "core.solver.compact_last_residual",
            (raw - raw.clamp(0.0, 1.0)).abs()
        );
        Ok((1.0 - probs.failure_probability(init)).clamp(0.0, 1.0))
    }

    /// The materialized [`TrCurve`](crate::batch::TrCurve) for both
    /// operational initial states from a single recursion run.
    pub fn tr_curve(&self, steps: usize) -> Result<crate::batch::TrCurve, CoreError> {
        self.record_run(steps);
        FastSolver::new(self.params).tr_curve(steps)
    }

    /// The whole reliability curve `TR(m)` for `m = 0..=steps`.
    pub fn reliability_curve(&self, init: State, steps: usize) -> Result<Vec<f64>, CoreError> {
        self.record_run(steps);
        FastSolver::new(self.params).reliability_curve(init, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::solver::SparseSolver;
    use State::*;

    fn estimated_params() -> SmpParams {
        // A structured day with churn and failures.
        let day: Vec<State> = (0..400)
            .map(|i| match i % 53 {
                0..=24 => S1,
                25..=39 => S2,
                40..=44 => S3,
                45..=48 => S1,
                _ => S5,
            })
            .collect();
        let windows: Vec<&[State]> = vec![&day];
        SmpParams::estimate(&windows, 6, 399)
    }

    #[test]
    fn matches_paper_solver_on_estimated_kernel() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        let paper = SparseSolver::new(&params);
        for init in [S1, S2] {
            for steps in [0usize, 1, 10, 100, 399] {
                let a = compact.temporal_reliability(init, steps).unwrap();
                let b = paper.temporal_reliability(init, steps).unwrap();
                assert!(
                    (a - b).abs() < 1e-9,
                    "init {init} steps {steps}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn curves_match_paper_solver() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        let paper = SparseSolver::new(&params);
        let a = compact.reliability_curve(S1, 200).unwrap();
        let b = paper.reliability_curve(S1, 200).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn nnz_is_small_for_estimated_kernels() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        assert!(compact.nnz() > 0);
        assert!(
            compact.nnz() < 50,
            "periodic day should produce few distinct durations, got {}",
            compact.nnz()
        );
    }

    #[test]
    fn rejects_failure_init_and_long_horizons() {
        let params = estimated_params();
        let compact = CompactSolver::from_params(&params);
        assert!(compact.temporal_reliability(S4, 10).is_err());
        assert!(compact.temporal_reliability(S1, 400).is_err());
    }

    #[test]
    fn empty_kernel_gives_unit_reliability() {
        let params = SmpParams::estimate(&[], 6, 100);
        let compact = CompactSolver::from_params(&params);
        assert_eq!(compact.temporal_reliability(S1, 100).unwrap(), 1.0);
        assert_eq!(compact.nnz(), 0);
    }
}
