//! The sparse interval-transition solver of paper Eq. 3 (§5.3).
//!
//! Exploiting the kernel's sparsity, only six interval transition
//! probabilities are needed for temporal reliability: `P_{1,j}(m)` and
//! `P_{2,j}(m)` for `j ∈ {S3, S4, S5}`. Since the failure states are
//! absorbing (`P_{j,j}(m) = 1`), the recursion is
//!
//! ```text
//! P_{1,j}(m) = Σ_{l=1..m} [ q_{1,2}(l) · P_{2,j}(m-l) + q_{1,j}(l) ]
//! P_{2,j}(m) = Σ_{l=1..m} [ q_{2,1}(l) · P_{1,j}(m-l) + q_{2,j}(l) ]
//! ```
//!
//! computed iteratively for `m = 1..T/d` in `O((T/d)²)` — matching the
//! superlinear computation-time growth the paper measures in Figure 4.
//! Temporal reliability is then `TR = 1 - Σ_j P_{init,j}(T/d)` (Eq. 2).

use crate::error::CoreError;
use crate::state::State;

use super::params::SmpParams;

/// The six per-step probability curves `(P_{1,j}(m), P_{2,j}(m))`,
/// `j ∈ {S3, S4, S5}`, produced by one run of the recursion.
pub(crate) type SixCurves = ([Vec<f64>; 3], [Vec<f64>; 3]);

/// The six interval transition probabilities at the requested horizon:
/// `p1[j]` = `P_{S1,S(3+j)}`, `p2[j]` = `P_{S2,S(3+j)}` for `j ∈ {0,1,2}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalProbs {
    /// `P_{1,3}, P_{1,4}, P_{1,5}` at the horizon.
    pub p1: [f64; 3],
    /// `P_{2,3}, P_{2,4}, P_{2,5}` at the horizon.
    pub p2: [f64; 3],
}

impl IntervalProbs {
    /// Probability of hitting *any* failure state from the given initial
    /// state within the horizon.
    ///
    /// In debug builds, each curve value is asserted to lie in `[0, 1]`
    /// before the final clamp: a NaN or negative entry means the kernel
    /// itself was malformed, and silently clamping it would launder the
    /// bug into a plausible-looking probability.
    ///
    /// # Panics
    /// Panics for failure initial states (the caller validates these).
    #[must_use]
    pub fn failure_probability(&self, init: State) -> f64 {
        let row = match init {
            State::S1 => &self.p1,
            State::S2 => &self.p2,
            s => panic!("failure_probability undefined for failure state {s}"),
        };
        for (j, &p) in row.iter().enumerate() {
            debug_assert!(
                (0.0..=1.0).contains(&p),
                "P_{{{init},S{}}} out of [0,1]: {p} (NaN or unnormalised kernel?)",
                j + 3
            );
        }
        row.iter().sum::<f64>().clamp(0.0, 1.0)
    }
}

/// Solver over an estimated kernel.
#[derive(Debug, Clone, Copy)]
pub struct SparseSolver<'a> {
    params: &'a SmpParams,
}

impl<'a> SparseSolver<'a> {
    /// Wraps the estimated parameters.
    #[must_use]
    pub fn new(params: &'a SmpParams) -> SparseSolver<'a> {
        SparseSolver { params }
    }

    /// Runs the recursion up to `steps` and returns the full per-step curves
    /// of the six probabilities: `(p1[j][m], p2[j][m])`.
    fn run(&self, steps: usize) -> Result<SixCurves, CoreError> {
        if steps > self.params.horizon() {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.params.horizon(),
            });
        }
        fgcs_runtime::counter_add!("core.solver.sparse_runs", 1);
        fgcs_runtime::counter_add!("core.solver.sparse_steps", steps as u64);
        // The recursion below touches 3 targets × m inner terms per step m,
        // so one run costs 3·steps·(steps+1)/2 kernel multiply-adds.
        fgcs_runtime::counter_add!(
            "core.solver.sparse_iterations",
            3 * (steps as u64) * (steps as u64 + 1) / 2
        );
        // Kernel rows: row(0) = from S1 with targets [S2, S3, S4, S5],
        // row(1) = from S2 with targets [S1, S3, S4, S5].
        let q1 = self.params.row(0);
        let q2 = self.params.row(1);

        let mut p1: [Vec<f64>; 3] = [
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
        ];
        let mut p2: [Vec<f64>; 3] = [
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
        ];

        for m in 1..=steps {
            for j in 0..3 {
                // Target index j+1 is the failure state S(3+j) in the kernel
                // row layout [other, S3, S4, S5].
                let mut acc1 = 0.0;
                let mut acc2 = 0.0;
                for l in 1..=m {
                    acc1 += q1[0][l] * p2[j][m - l] + q1[j + 1][l];
                    acc2 += q2[0][l] * p1[j][m - l] + q2[j + 1][l];
                }
                p1[j][m] = acc1.clamp(0.0, 1.0);
                p2[j][m] = acc2.clamp(0.0, 1.0);
            }
        }
        Ok((p1, p2))
    }

    /// The six interval transition probabilities at horizon `steps`.
    pub fn interval_probabilities(&self, steps: usize) -> Result<IntervalProbs, CoreError> {
        let (p1, p2) = self.run(steps)?;
        Ok(IntervalProbs {
            p1: [p1[0][steps], p1[1][steps], p1[2][steps]],
            p2: [p2[0][steps], p2[1][steps], p2[2][steps]],
        })
    }

    /// Temporal reliability `TR = 1 - Σ_j P_{init,j}(steps)` for an
    /// operational initial state.
    pub fn temporal_reliability(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let probs = self.interval_probabilities(steps)?;
        // The per-state sums are clamped into [0,1]; any mass outside that
        // range is numerical drift of the recursion. Export it as the
        // solver's convergence residual.
        let raw: f64 = match init {
            State::S1 => probs.p1.iter().sum(),
            _ => probs.p2.iter().sum(),
        };
        fgcs_runtime::gauge_set!(
            "core.solver.sparse_last_residual",
            (raw - raw.clamp(0.0, 1.0)).abs()
        );
        Ok((1.0 - probs.failure_probability(init)).clamp(0.0, 1.0))
    }

    /// The whole reliability curve `TR(m)` for `m = 0..=steps` (an
    /// extension beyond the paper: useful for schedulers comparing horizons
    /// without re-running the recursion).
    pub fn reliability_curve(&self, init: State, steps: usize) -> Result<Vec<f64>, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let (p1, p2) = self.run(steps)?;
        let row = match init {
            State::S1 => &p1,
            _ => &p2,
        };
        Ok((0..=steps)
            .map(|m| (1.0 - (row[0][m] + row[1][m] + row[2][m])).clamp(0.0, 1.0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use State::*;

    /// A kernel with a single deterministic transition S1 -> S3 at holding 3.
    fn kernel_one_shot(horizon: usize, prob: f64) -> SmpParams {
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; horizon + 1];
            }
        }
        kernel[0][1][3] = prob; // q_{S1,S3}(3)
        SmpParams::from_kernel(6, kernel)
    }

    #[test]
    fn empty_kernel_gives_perfect_reliability() {
        let p = SmpParams::estimate(&[], 6, 50);
        let s = SparseSolver::new(&p);
        assert_eq!(s.temporal_reliability(S1, 50).unwrap(), 1.0);
        assert_eq!(s.temporal_reliability(S2, 50).unwrap(), 1.0);
    }

    #[test]
    fn one_shot_failure_shows_up_after_holding_time() {
        let p = kernel_one_shot(10, 0.4);
        let s = SparseSolver::new(&p);
        let curve = s.reliability_curve(S1, 10).unwrap();
        assert_eq!(curve[0], 1.0);
        assert_eq!(curve[2], 1.0); // before the holding time elapses
        assert!((curve[3] - 0.6).abs() < 1e-12);
        assert!((curve[10] - 0.6).abs() < 1e-12); // no further mass
    }

    #[test]
    fn failure_init_is_rejected() {
        let p = kernel_one_shot(10, 0.4);
        let s = SparseSolver::new(&p);
        assert!(matches!(
            s.temporal_reliability(S3, 5),
            Err(CoreError::FailureInitialState(S3))
        ));
    }

    #[test]
    fn horizon_overflow_is_rejected() {
        let p = kernel_one_shot(10, 0.4);
        let s = SparseSolver::new(&p);
        assert!(matches!(
            s.temporal_reliability(S1, 11),
            Err(CoreError::HorizonTooLong {
                requested: 11,
                available: 10
            })
        ));
    }

    #[test]
    fn reliability_is_monotone_non_increasing() {
        // Richer kernel: S1 <-> S2 churn plus failure leaks.
        let horizon = 40;
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; horizon + 1];
            }
        }
        kernel[0][0][2] = 0.5; // S1 -> S2 at 2
        kernel[0][1][4] = 0.1; // S1 -> S3 at 4
        kernel[0][3][6] = 0.05; // S1 -> S5 at 6
        kernel[1][0][3] = 0.6; // S2 -> S1 at 3
        kernel[1][2][5] = 0.2; // S2 -> S4 at 5
        let p = SmpParams::from_kernel(6, kernel);
        let s = SparseSolver::new(&p);
        for init in [S1, S2] {
            let curve = s.reliability_curve(init, horizon).unwrap();
            for w in curve.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "TR increased: {} -> {}", w[0], w[1]);
            }
            assert!(curve.iter().all(|tr| (0.0..=1.0).contains(tr)));
        }
    }

    #[test]
    fn two_hop_failure_path_composes() {
        // S1 -> S2 at 1 (prob 1), S2 -> S3 at 1 (prob 1): failure by m = 2.
        let horizon = 5;
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; horizon + 1];
            }
        }
        kernel[0][0][1] = 1.0;
        kernel[1][1][1] = 1.0;
        let p = SmpParams::from_kernel(6, kernel);
        let s = SparseSolver::new(&p);
        let curve = s.reliability_curve(S1, 5).unwrap();
        assert_eq!(curve[0], 1.0);
        assert_eq!(curve[1], 1.0); // at m=1 we are in S2, still operational
        assert!((curve[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn interval_probs_split_by_failure_state() {
        let horizon = 8;
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; horizon + 1];
            }
        }
        kernel[0][1][2] = 0.2; // S1 -> S3
        kernel[0][2][3] = 0.3; // S1 -> S4
        kernel[0][3][4] = 0.1; // S1 -> S5
        let p = SmpParams::from_kernel(6, kernel);
        let s = SparseSolver::new(&p);
        let probs = s.interval_probabilities(8).unwrap();
        assert!((probs.p1[0] - 0.2).abs() < 1e-12);
        assert!((probs.p1[1] - 0.3).abs() < 1e-12);
        assert!((probs.p1[2] - 0.1).abs() < 1e-12);
        assert_eq!(probs.p2, [0.0; 3]);
        assert!((probs.failure_probability(S1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_steps_reliability_is_one() {
        let p = kernel_one_shot(10, 1.0);
        let s = SparseSolver::new(&p);
        assert_eq!(s.temporal_reliability(S1, 0).unwrap(), 1.0);
    }
}
