//! The discrete-time semi-Markov process (SMP) model of paper §4.
//!
//! * [`params`] — estimation of the SMP parameters (the transition matrix
//!   `Q` and holding-time mass functions `H`, stored jointly as the
//!   semi-Markov kernel `q_{i,k}(l) = Q_i(k) · H_{i,k}(l)`) from history
//!   logs,
//! * [`solver`] — the sparse recursion of paper Eq. 3, which computes the
//!   six interval transition probabilities `P_{1,j}`, `P_{2,j}`
//!   (`j ∈ {3,4,5}`) needed for temporal reliability,
//! * [`dense`] — a general 5-state interval-transition solver used to
//!   cross-validate the sparse one and as the ablation baseline,
//! * [`incremental`] — the O(1)-per-sample online estimator backing the
//!   sharded serving registry, bitwise-verified against the full-scan
//!   [`params`] oracle,
//! * [`fast`] — the production solver: SoA interval streams in a reusable
//!   [`fast::SolveScratch`] arena, O(1) prefix-sum holding-time terms, and
//!   an error-bounded (≤ 1e-12 unit-scale) contract against the
//!   paper-order oracle.

pub mod compact;
pub mod dense;
pub mod fast;
pub mod incremental;
pub mod markov;
pub mod params;
pub mod solver;

pub use compact::CompactSolver;
pub use dense::DenseSolver;
pub use fast::{with_thread_scratch, FastSolver, SolveScratch};
pub use incremental::IncrementalEstimator;
pub use markov::MarkovChain;
pub use params::{HoldingPmf, SmpParams, SojournAccumulator};
pub use solver::{IntervalProbs, SparseSolver};
