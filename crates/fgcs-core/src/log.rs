//! History logs: per-day state sequences collected by the State Manager and
//! the store the predictor draws its statistics from (paper §5).

use fgcs_runtime::impl_json_struct;
use fgcs_runtime::json::JsonError;

use crate::classify::StateClassifier;
use crate::error::CoreError;
use crate::model::{AvailabilityModel, LoadSample};
use crate::state::State;
use crate::window::{DayType, TimeWindow};

/// What [`HistoryStore::from_samples_lossy`] did to a corrupted stream:
/// how much was repaired, quarantined, or dropped. Serialisable so chaos
/// campaigns can log it alongside their metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Samples offered to the ingestor (including any trailing partial day).
    pub total_samples: usize,
    /// Samples whose readings were insane and repaired by hold-last.
    pub repaired_samples: usize,
    /// Whole days accepted into the store.
    pub days_ingested: usize,
    /// Whole days rejected as irreparable (more than half repaired).
    pub days_quarantined: usize,
    /// Samples of a trailing partial day dropped from the tail.
    pub trailing_samples_dropped: usize,
}

impl_json_struct!(IngestReport {
    total_samples,
    repaired_samples,
    days_ingested,
    days_quarantined,
    trailing_samples_dropped,
});

impl IngestReport {
    /// Whether the whole stream was ingested untouched.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.repaired_samples == 0
            && self.days_quarantined == 0
            && self.trailing_samples_dropped == 0
    }
}

/// Fraction of a day's samples above which the day is quarantined rather
/// than repaired: a day that is mostly hold-last interpolation carries no
/// signal and would bias the kernel estimate.
const QUARANTINE_REPAIR_FRACTION: f64 = 0.5;

/// Repairs insane readings in a sample stream by holding the last sane
/// sample (per the whole reading — CPU and memory travel together, since a
/// monitor glitch rarely corrupts one field in isolation). A stream that
/// *starts* insane holds `seed` instead. Returns the repaired stream and
/// the number of repaired samples.
///
/// Idempotent: the repaired stream is entirely sane, so repairing it again
/// changes nothing (a property test asserts this).
pub fn sanitize_samples(samples: &[LoadSample], seed: LoadSample) -> (Vec<LoadSample>, usize) {
    let mut held = seed;
    let mut repaired = 0usize;
    let out = samples
        .iter()
        .map(|&s| {
            if s.is_sane() {
                held = s;
                s
            } else {
                repaired += 1;
                // A dead heartbeat is real signal even when the readings
                // are garbage: keep `alive` from the observation.
                LoadSample {
                    alive: s.alive,
                    ..held
                }
            }
        })
        .collect();
    (out, repaired)
}

/// A uniformly sampled state sequence with its discretisation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateLog {
    step_secs: u32,
    states: Vec<State>,
}

impl_json_struct!(StateLog { step_secs, states });

impl StateLog {
    /// Wraps a state sequence sampled every `step_secs` seconds.
    ///
    /// # Panics
    /// Panics if `step_secs == 0`.
    #[must_use]
    pub fn new(step_secs: u32, states: Vec<State>) -> StateLog {
        assert!(step_secs > 0, "step must be positive");
        StateLog { step_secs, states }
    }

    /// The discretisation step in seconds.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// The state sequence.
    #[must_use]
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the log holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The samples covering `window` (inclusive of both fence posts, i.e.
    /// `window.steps() + 1` samples so that `steps` transitions are
    /// observable), or an error if the log is too short.
    pub fn window_slice(&self, window: TimeWindow) -> Result<&[State], CoreError> {
        let start = window.start_step(self.step_secs);
        let steps = window.steps(self.step_secs);
        let end = start + steps + 1;
        if end > self.states.len() {
            return Err(CoreError::WindowOutOfRange {
                window,
                log_len: self.states.len(),
                needed: end,
            });
        }
        Ok(&self.states[start..end])
    }

    /// Overwrites `len` samples starting at `start` with `state`, clamping
    /// to the log's end. Used by the noise-injection experiments (§7.3).
    pub fn overwrite(&mut self, start: usize, len: usize, state: State) {
        let n = self.states.len();
        let end = (start + len).min(n);
        for s in &mut self.states[start.min(n)..end] {
            *s = state;
        }
    }

    /// Number of *unavailability occurrences*: transitions from an
    /// operational (or log-start) position into a failure state. This is the
    /// quantity the paper reports as 405–453 per machine over 3 months.
    #[must_use]
    pub fn unavailability_occurrences(&self) -> usize {
        let mut count = 0;
        let mut prev_failure = true; // suppress counting if log starts failed
        for &s in &self.states {
            if s.is_failure() && !prev_failure {
                count += 1;
            }
            prev_failure = s.is_failure();
        }
        count
    }
}

/// One machine-day of availability states, tagged with its position in the
/// trace and its day type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DayLog {
    /// Zero-based day index within the trace (day 0 is a Monday).
    pub day_index: usize,
    /// Weekday or weekend.
    pub day_type: DayType,
    /// The day's state sequence.
    pub log: StateLog,
}

impl_json_struct!(DayLog {
    day_index,
    day_type,
    log,
});

impl DayLog {
    /// Builds a day log, deriving the day type from the index.
    #[must_use]
    pub fn new(day_index: usize, log: StateLog) -> DayLog {
        DayLog {
            day_index,
            day_type: DayType::of_day(day_index),
            log,
        }
    }
}

/// The history store the State Manager keeps: an ordered collection of day
/// logs for one machine. Prediction for a window on a weekday (weekend) uses
/// the corresponding window of the most recent weekdays (weekends) — §4.2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistoryStore {
    days: Vec<DayLog>,
}

impl_json_struct!(HistoryStore { days });

impl HistoryStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> HistoryStore {
        HistoryStore::default()
    }

    /// Builds a history store by classifying a stream of monitor samples.
    ///
    /// The stream must hold whole days (`model.samples_per_day()` samples
    /// each); `first_day_index` anchors the weekday/weekend calendar.
    ///
    /// Classification (including transient folding) runs per day, matching
    /// the per-day logs the State Manager keeps.
    pub fn from_samples(
        model: &AvailabilityModel,
        samples: &[LoadSample],
        first_day_index: usize,
    ) -> Result<HistoryStore, CoreError> {
        let per_day = model.samples_per_day();
        if per_day == 0 || !samples.len().is_multiple_of(per_day) {
            return Err(CoreError::PartialDay {
                samples: samples.len(),
                per_day,
            });
        }
        let classifier = StateClassifier::new(*model);
        let mut store = HistoryStore::new();
        for (i, chunk) in samples.chunks(per_day).enumerate() {
            let states = classifier.classify(chunk);
            store.push_day(DayLog::new(
                first_day_index + i,
                StateLog::new(model.monitor_period_secs, states),
            ));
        }
        Ok(store)
    }

    /// Builds a history store from a stream that may be corrupted or
    /// incomplete, degrading instead of erroring where
    /// [`HistoryStore::from_samples`] would fail:
    ///
    /// * insane readings (NaN, ±inf, out-of-range — see
    ///   [`LoadSample::is_sane`]) are repaired by holding the last sane
    ///   sample;
    /// * days needing more than half their samples repaired are
    ///   **quarantined** — excluded from the store, though their calendar
    ///   slot still advances so later days keep their weekday/weekend tag;
    /// * a trailing partial day is dropped rather than rejected.
    ///
    /// On a clean whole-day stream this is exactly equivalent to
    /// `from_samples`. The returned [`IngestReport`] accounts for every
    /// repair; `core.ingest.*` counters mirror it in the metrics registry.
    #[must_use]
    pub fn from_samples_lossy(
        model: &AvailabilityModel,
        samples: &[LoadSample],
        first_day_index: usize,
    ) -> (HistoryStore, IngestReport) {
        let per_day = model.samples_per_day();
        let mut report = IngestReport {
            total_samples: samples.len(),
            ..IngestReport::default()
        };
        let whole = samples.len() / per_day * per_day;
        report.trailing_samples_dropped = samples.len() - whole;
        let classifier = StateClassifier::new(*model);
        let mut store = HistoryStore::new();
        // Seed the hold-last repair with a sample a guest could run beside.
        let fallback_mem = model.guest_working_set_mb * 4.0;
        let mut held_seed = LoadSample::idle(fallback_mem);
        for (i, chunk) in samples[..whole].chunks(per_day).enumerate() {
            let (repaired, n_repaired) = sanitize_samples(chunk, held_seed);
            report.repaired_samples += n_repaired;
            // Carry the last sane reading across the day boundary so a
            // stream starting a day insane holds yesterday's level.
            if let Some(&last_sane) = repaired.iter().rev().find(|s| s.is_sane()) {
                held_seed = last_sane;
            }
            if n_repaired as f64 > QUARANTINE_REPAIR_FRACTION * per_day as f64 {
                report.days_quarantined += 1;
                continue;
            }
            let states = classifier.classify(&repaired);
            store.push_day(DayLog::new(
                first_day_index + i,
                StateLog::new(model.monitor_period_secs, states),
            ));
            report.days_ingested += 1;
        }
        fgcs_runtime::counter_add!(
            "core.ingest.repaired_samples",
            report.repaired_samples as u64
        );
        fgcs_runtime::counter_add!(
            "core.ingest.quarantined_days",
            report.days_quarantined as u64
        );
        fgcs_runtime::counter_add!(
            "core.ingest.dropped_trailing_samples",
            report.trailing_samples_dropped as u64
        );
        (store, report)
    }

    /// Appends a day log (days are expected in chronological order).
    pub fn push_day(&mut self, day: DayLog) {
        self.days.push(day);
    }

    /// All day logs in chronological order.
    #[must_use]
    pub fn days(&self) -> &[DayLog] {
        &self.days
    }

    /// Mutable access to the day logs (noise injection / failure-injection
    /// experiments).
    #[must_use]
    pub fn days_mut(&mut self) -> &mut [DayLog] {
        &mut self.days
    }

    /// Number of stored days.
    #[must_use]
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// `true` when no days are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The states covering `window` anchored at the day stored at position
    /// `pos`: the `window.steps() + 1` fence-post samples. For windows that
    /// cross midnight the sequence is stitched from this day and the *next
    /// chronological* day (which must be stored at `pos + 1` with a
    /// consecutive day index).
    ///
    /// Returns `None` when the logs do not cover the window.
    #[must_use]
    pub fn window_states(&self, pos: usize, window: TimeWindow) -> Option<Vec<State>> {
        let day = self.days.get(pos)?;
        let step = day.log.step_secs();
        let start = window.start_step(step);
        let steps = window.steps(step);
        // Windows that fit inside this day's log (including the closing
        // fence post) need no stitching; everything else — windows crossing
        // midnight, or ending exactly at midnight, whose final fence post
        // is the next day's first sample — continues into the next
        // chronological day.
        if start + steps < day.log.len() {
            return Some(day.log.states()[start..start + steps + 1].to_vec());
        }
        let next = self.days.get(pos + 1)?;
        if next.day_index != day.day_index + 1 || next.log.step_secs() != step {
            return None;
        }
        let first_len = day.log.len().checked_sub(start)?;
        let rest = (steps + 1).checked_sub(first_len)?;
        if rest > next.log.len() {
            return None;
        }
        let mut out = Vec::with_capacity(steps + 1);
        out.extend_from_slice(&day.log.states()[start..]);
        out.extend_from_slice(&next.log.states()[..rest]);
        Some(out)
    }

    /// The window state sequences of the most recent `max_days` days of the
    /// given type (all matching days if `max_days` is `None`; empty for
    /// `Some(0)`), most recent first. A cross-midnight window belongs to the
    /// day it *starts* on.
    ///
    /// Days whose logs do not cover the window are skipped.
    #[must_use]
    pub fn recent_windows(
        &self,
        day_type: DayType,
        window: TimeWindow,
        max_days: Option<usize>,
    ) -> Vec<Vec<State>> {
        if max_days == Some(0) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for pos in (0..self.days.len()).rev() {
            if self.days[pos].day_type != day_type {
                continue;
            }
            if let Some(states) = self.window_states(pos, window) {
                out.push(states);
                if let Some(n) = max_days {
                    if out.len() >= n {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Splits the store into (training, test) parts by a `train:test` ratio,
    /// preserving chronological order (training is the *earlier* part, as in
    /// the paper's experiments).
    ///
    /// # Panics
    /// Panics if the ratio parts are both zero.
    #[must_use]
    pub fn split_ratio(&self, train: usize, test: usize) -> (HistoryStore, HistoryStore) {
        assert!(train + test > 0, "ratio must be positive");
        let n_train = self.days.len() * train / (train + test);
        let (a, b) = self.days.split_at(n_train);
        (
            HistoryStore { days: a.to_vec() },
            HistoryStore { days: b.to_vec() },
        )
    }

    /// Serialises the store to JSON (the on-disk format the State Manager
    /// persists its history logs in).
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(fgcs_runtime::json::to_string(self))
    }

    /// Deserialises a store from JSON.
    pub fn from_json(json: &str) -> Result<HistoryStore, JsonError> {
        fgcs_runtime::json::from_str(json)
    }

    /// Total unavailability occurrences across all stored days.
    #[must_use]
    pub fn unavailability_occurrences(&self) -> usize {
        // Count per day, plus failures that begin exactly at a day boundary
        // after an operational day end.
        let mut total = 0;
        let mut prev_last_failure: Option<bool> = None;
        for day in &self.days {
            let states = day.log.states();
            total += day.log.unavailability_occurrences();
            if let (Some(false), Some(first)) = (prev_last_failure, states.first()) {
                if first.is_failure() {
                    total += 1;
                }
            }
            prev_last_failure = states.last().map(|s| s.is_failure());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(states: Vec<State>) -> StateLog {
        StateLog::new(6, states)
    }

    #[test]
    fn window_slice_is_inclusive_of_fence_posts() {
        // 1-minute day at 6s step = 10 samples.
        let log = log_of(vec![State::S1; 14_400]);
        let w = TimeWindow::new(60, 60); // 10 steps
        let slice = log.window_slice(w).unwrap();
        assert_eq!(slice.len(), 11);
    }

    #[test]
    fn window_slice_out_of_range_errors() {
        let log = log_of(vec![State::S1; 100]);
        let w = TimeWindow::new(0, 6 * 200);
        assert!(matches!(
            log.window_slice(w),
            Err(CoreError::WindowOutOfRange { .. })
        ));
    }

    #[test]
    fn unavailability_occurrences_counts_entries() {
        use State::*;
        let log = log_of(vec![S1, S1, S3, S3, S1, S5, S5, S2, S4, S4]);
        // Entries into failure: at index 2 (S3), 5 (S5), 8 (S4).
        assert_eq!(log.unavailability_occurrences(), 3);
    }

    #[test]
    fn unavailability_ignores_leading_failure() {
        use State::*;
        let log = log_of(vec![S5, S5, S1, S3]);
        assert_eq!(log.unavailability_occurrences(), 1);
    }

    #[test]
    fn from_samples_rejects_partial_days() {
        let model = AvailabilityModel::default();
        let samples = vec![LoadSample::idle(512.0); 100];
        assert!(matches!(
            HistoryStore::from_samples(&model, &samples, 0),
            Err(CoreError::PartialDay { .. })
        ));
    }

    #[test]
    fn from_samples_builds_tagged_days() {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let samples = vec![LoadSample::idle(512.0); per_day * 7];
        let store = HistoryStore::from_samples(&model, &samples, 0).unwrap();
        assert_eq!(store.len(), 7);
        assert_eq!(store.days()[0].day_type, DayType::Weekday);
        assert_eq!(store.days()[5].day_type, DayType::Weekend);
        assert!(store.days()[0].log.states().iter().all(|&s| s == State::S1));
    }

    fn nan_sample() -> LoadSample {
        LoadSample {
            host_cpu: f64::NAN,
            free_mem_mb: f64::NAN,
            alive: true,
        }
    }

    #[test]
    fn lossy_matches_strict_on_clean_input() {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let mut samples = vec![LoadSample::idle(512.0); per_day * 3];
        // Mix in busy and revoked stretches so classification is non-trivial.
        for s in &mut samples[100..400] {
            s.host_cpu = 0.9;
        }
        for s in &mut samples[per_day..per_day + 50] {
            *s = LoadSample::revoked();
        }
        let strict = HistoryStore::from_samples(&model, &samples, 2).unwrap();
        let (lossy, report) = HistoryStore::from_samples_lossy(&model, &samples, 2);
        assert_eq!(strict, lossy);
        assert!(report.is_clean());
        assert_eq!(report.days_ingested, 3);
    }

    #[test]
    fn lossy_repairs_insane_samples_by_hold_last() {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let mut samples = vec![LoadSample::idle(512.0); per_day];
        samples[10].host_cpu = 0.9; // S3-level load…
        samples[11] = nan_sample(); // …held through the glitch
        samples[12].host_cpu = f64::INFINITY;
        let (store, report) = HistoryStore::from_samples_lossy(&model, &samples, 0);
        assert_eq!(report.repaired_samples, 2);
        assert_eq!(report.days_ingested, 1);
        let states = store.days()[0].log.states();
        // The held 0.9 load classifies 11 and 12 like their neighbor 10.
        assert_eq!(states[11], states[10]);
        assert_eq!(states[12], states[10]);
    }

    #[test]
    fn lossy_quarantines_mostly_garbage_days_but_keeps_calendar() {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let mut samples = vec![LoadSample::idle(512.0); per_day * 3];
        // Corrupt > half of day 1.
        for s in &mut samples[per_day..per_day + per_day / 2 + 10] {
            *s = nan_sample();
        }
        let (store, report) = HistoryStore::from_samples_lossy(&model, &samples, 0);
        assert_eq!(report.days_quarantined, 1);
        assert_eq!(report.days_ingested, 2);
        // Day indices 0 and 2 survive: the quarantined slot still advanced.
        let indices: Vec<usize> = store.days().iter().map(|d| d.day_index).collect();
        assert_eq!(indices, vec![0, 2]);
    }

    #[test]
    fn lossy_drops_trailing_partial_day() {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let samples = vec![LoadSample::idle(512.0); per_day + 123];
        let (store, report) = HistoryStore::from_samples_lossy(&model, &samples, 0);
        assert_eq!(store.len(), 1);
        assert_eq!(report.trailing_samples_dropped, 123);
    }

    #[test]
    fn lossy_preserves_dead_heartbeat_through_repair() {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let mut samples = vec![LoadSample::idle(512.0); per_day];
        samples[20] = LoadSample {
            alive: false,
            ..nan_sample()
        };
        let (store, report) = HistoryStore::from_samples_lossy(&model, &samples, 0);
        assert_eq!(report.repaired_samples, 1);
        // The dead heartbeat survives the value repair: state is S5.
        assert_eq!(store.days()[0].log.states()[20], State::S5);
    }

    #[test]
    fn recent_windows_filters_by_day_type_and_limits() {
        let mut store = HistoryStore::new();
        for day in 0..14 {
            store.push_day(DayLog::new(day, log_of(vec![State::S1; 14_400])));
        }
        let w = TimeWindow::from_hours(8.0, 1.0);
        let weekdays = store.recent_windows(DayType::Weekday, w, None);
        assert_eq!(weekdays.len(), 10);
        let weekends = store.recent_windows(DayType::Weekend, w, Some(3));
        assert_eq!(weekends.len(), 3);
    }

    #[test]
    fn recent_windows_skips_short_days() {
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(0, log_of(vec![State::S1; 100]))); // truncated day
        store.push_day(DayLog::new(1, log_of(vec![State::S1; 14_400])));
        let w = TimeWindow::from_hours(8.0, 1.0);
        let windows = store.recent_windows(DayType::Weekday, w, None);
        assert_eq!(windows.len(), 1);
    }

    #[test]
    fn window_states_stitches_across_midnight() {
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(0, log_of(vec![State::S1; 14_400])));
        store.push_day(DayLog::new(1, log_of(vec![State::S2; 14_400])));
        // 23:00 + 2h crosses midnight: 1200 steps, 1201 samples.
        let w = TimeWindow::from_hours(23.0, 2.0);
        let states = store.window_states(0, w).unwrap();
        assert_eq!(states.len(), 1201);
        // First hour (600 fence posts) from day 0, remainder from day 1.
        assert_eq!(states[0], State::S1);
        assert_eq!(states[599], State::S1);
        assert_eq!(states[600], State::S2);
        assert_eq!(states[1200], State::S2);
    }

    #[test]
    fn window_states_requires_consecutive_next_day() {
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(0, log_of(vec![State::S1; 14_400])));
        store.push_day(DayLog::new(2, log_of(vec![State::S2; 14_400]))); // gap
        let w = TimeWindow::from_hours(23.0, 2.0);
        assert_eq!(store.window_states(0, w), None);
    }

    #[test]
    fn window_states_none_without_next_day() {
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(0, log_of(vec![State::S1; 14_400])));
        let w = TimeWindow::from_hours(23.0, 2.0);
        assert_eq!(store.window_states(0, w), None);
        // An in-day window still works.
        assert!(store
            .window_states(0, TimeWindow::from_hours(8.0, 1.0))
            .is_some());
    }

    #[test]
    fn recent_windows_includes_cross_midnight_days() {
        let mut store = HistoryStore::new();
        for day in 0..7 {
            store.push_day(DayLog::new(day, log_of(vec![State::S1; 14_400])));
        }
        let w = TimeWindow::from_hours(23.0, 2.0);
        // Days 0..4 are weekdays; day 4 (Friday) stitches into day 5
        // (Saturday) which exists, so all 5 weekdays qualify.
        let windows = store.recent_windows(DayType::Weekday, w, None);
        assert_eq!(windows.len(), 5);
        // Saturday (5) stitches into Sunday (6); Sunday has no successor.
        let weekend = store.recent_windows(DayType::Weekend, w, None);
        assert_eq!(weekend.len(), 1);
    }

    #[test]
    fn split_ratio_preserves_order_and_counts() {
        let mut store = HistoryStore::new();
        for day in 0..10 {
            store.push_day(DayLog::new(day, log_of(vec![State::S1; 10])));
        }
        let (train, test) = store.split_ratio(6, 4);
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 4);
        assert_eq!(train.days()[0].day_index, 0);
        assert_eq!(test.days()[0].day_index, 6);
    }

    #[test]
    fn store_unavailability_spans_day_boundaries() {
        use State::*;
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(0, log_of(vec![S1, S1])));
        store.push_day(DayLog::new(1, log_of(vec![S5, S1]))); // entry at boundary
        store.push_day(DayLog::new(2, log_of(vec![S1, S3]))); // entry mid-day
        assert_eq!(store.unavailability_occurrences(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(0, log_of(vec![State::S1, State::S3])));
        let json = fgcs_runtime::json::to_string(&store);
        let back: HistoryStore = fgcs_runtime::json::from_str(&json).unwrap();
        assert_eq!(store, back);
    }

    #[test]
    fn json_persistence_round_trips() {
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(
            3,
            log_of(vec![State::S2, State::S5, State::S1]),
        ));
        let json = store.to_json().unwrap();
        let back = HistoryStore::from_json(&json).unwrap();
        assert_eq!(store, back);
        assert!(HistoryStore::from_json("{not json").is_err());
    }
}
