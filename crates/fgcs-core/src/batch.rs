//! Batched multi-horizon temporal-reliability queries.
//!
//! The Eq.-3 recursion is *prefix-closed*: computing `P_{init,j}(M)`
//! necessarily computes `P_{init,j}(m)` for every `m ≤ M` along the way, in
//! the exact same floating-point operation order a standalone solve at `m`
//! would use. One `O(M²)` run therefore answers a whole sweep of `N`
//! horizons — bit-identically to `N` independent solves — for the cost of
//! the longest one, where the independent sweep would pay
//! `Σᵢ (i·M/N)² ≈ M²·N/3`.
//!
//! * [`BatchSolver`] — the paper-order recursion restructured over flat
//!   state-arrays with blocked accumulation (single accumulator per target,
//!   so the summation order — and thus every bit of the result — matches
//!   [`crate::smp::SparseSolver`] exactly).
//! * [`TrCurve`] — the materialized `TR(m)` curve for both operational
//!   initial states; one curve answers any horizon ≤ M in O(1).
//! * [`predict_cluster`] / [`evaluate_cluster`] — machine-level fan-out of
//!   TR queries and train/test evaluations across
//!   [`fgcs_runtime::parallel`], with deterministic result ordering.

use crate::cache::QhCache;
use crate::error::CoreError;
use crate::log::HistoryStore;
use crate::predictor::{evaluate_window, SmpPredictor, WindowEvaluation};
use crate::smp::SmpParams;
use crate::state::State;
use crate::window::{DayType, TimeWindow};

/// Terms per accumulation block. The value only affects speed: each block
/// is a constant-trip-count loop the compiler can unroll and keep free of
/// bounds checks, while all products still feed one accumulator in the
/// original `l = 1..=m` order, preserving bit-identical results.
const BLOCK: usize = 8;

/// The six per-step curves `P_{init,j}(m)` for `m = 0..=M`,
/// `init ∈ {S1, S2}`, `j ∈ {S3, S4, S5}` — the raw output of one batched
/// recursion run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalCurves {
    /// `p1[j][m]` = `P_{S1,S(3+j)}(m)`.
    pub p1: [Vec<f64>; 3],
    /// `p2[j][m]` = `P_{S2,S(3+j)}(m)`.
    pub p2: [Vec<f64>; 3],
}

/// A materialized temporal-reliability curve: `TR(m)` for `m = 0..=M` from
/// both operational initial states, answering any horizon within the run
/// in O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct TrCurve {
    step_secs: u32,
    s1: Vec<f64>,
    s2: Vec<f64>,
}

impl TrCurve {
    /// Builds the curve from the six interval-probability curves, applying
    /// paper Eq. 2 (`TR = 1 − Σⱼ P_{init,j}`) at every step. The clamp
    /// sequence mirrors [`crate::smp::SparseSolver::temporal_reliability`]
    /// exactly, so curve values are bit-identical to standalone solves.
    #[must_use]
    pub fn from_interval_curves(step_secs: u32, curves: &IntervalCurves) -> TrCurve {
        TrCurve::from_raw_curves(step_secs, &curves.p1, &curves.p2)
    }

    /// Shared constructor for solvers that hold the six curves in raw
    /// array form.
    pub(crate) fn from_raw_curves(
        step_secs: u32,
        p1: &[Vec<f64>; 3],
        p2: &[Vec<f64>; 3],
    ) -> TrCurve {
        TrCurve::from_rows(
            step_secs,
            [&p1[0], &p1[1], &p1[2]],
            [&p2[0], &p2[1], &p2[2]],
        )
    }

    /// Constructor over borrowed planar rows (the scratch-arena layout of
    /// [`crate::smp::SolveScratch`]'s six planes).
    pub(crate) fn from_rows(step_secs: u32, p1: [&[f64]; 3], p2: [&[f64]; 3]) -> TrCurve {
        let tr_of = |rows: [&[f64]; 3]| -> Vec<f64> {
            (0..rows[0].len())
                .map(|m| {
                    let sum = rows[0][m] + rows[1][m] + rows[2][m];
                    (1.0 - sum.clamp(0.0, 1.0)).clamp(0.0, 1.0)
                })
                .collect()
        };
        TrCurve {
            step_secs,
            s1: tr_of(p1),
            s2: tr_of(p2),
        }
    }

    /// Constructor over the fast solver's triple-interleaved planes
    /// (`plane[3·m + j]`), applying the same Eq.-2 clamp sequence.
    pub(crate) fn from_interleaved(
        step_secs: u32,
        p1: &[f64],
        p2: &[f64],
        steps: usize,
    ) -> TrCurve {
        let tr_of = |plane: &[f64]| -> Vec<f64> {
            (0..=steps)
                .map(|m| {
                    let b = 3 * m;
                    let sum = plane[b] + plane[b + 1] + plane[b + 2];
                    (1.0 - sum.clamp(0.0, 1.0)).clamp(0.0, 1.0)
                })
                .collect()
        };
        TrCurve {
            step_secs,
            s1: tr_of(p1),
            s2: tr_of(p2),
        }
    }

    /// The discretisation step the curve was computed at.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// The longest horizon (in steps) the curve answers.
    #[must_use]
    pub fn horizon_steps(&self) -> usize {
        self.s1.len().saturating_sub(1)
    }

    /// Temporal reliability at `steps` from the given initial state.
    pub fn tr(&self, init: State, steps: usize) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        if steps > self.horizon_steps() {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.horizon_steps(),
            });
        }
        Ok(match init {
            State::S1 => self.s1[steps],
            _ => self.s2[steps],
        })
    }

    /// The whole `TR(m)` curve for one initial state.
    pub fn curve(&self, init: State) -> Result<&[f64], CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        Ok(match init {
            State::S1 => &self.s1,
            _ => &self.s2,
        })
    }
}

/// The paper-order Eq.-3 solver restructured for batched queries: flat
/// per-curve arrays, blocked inner accumulation, and curve (rather than
/// scalar) outputs.
#[derive(Debug, Clone, Copy)]
pub struct BatchSolver<'a> {
    params: &'a SmpParams,
}

impl<'a> BatchSolver<'a> {
    /// Wraps the estimated parameters.
    #[must_use]
    pub fn new(params: &'a SmpParams) -> BatchSolver<'a> {
        BatchSolver { params }
    }

    /// One convolution step of the recursion:
    /// `Σ_{l=1..m} q_tr(l)·p_other(m−l) + q_direct(l)`, accumulated in the
    /// exact `l = 1..=m` order of the paper solver. The blocks exist only
    /// to give the compiler constant-trip-count inner loops; a single
    /// accumulator keeps the floating-point association unchanged.
    #[inline]
    fn convolve(q_tr: &[f64], q_direct: &[f64], p_other: &[f64], m: usize) -> f64 {
        let mut acc = 0.0;
        let qt = &q_tr[1..=m];
        let qd = &q_direct[1..=m];
        // Term l = k+1 multiplies p_other[m-1-k]: the p window walks
        // backwards as the q window walks forwards.
        let mut p_end = m;
        let blocks = m / BLOCK;
        for c in 0..blocks {
            let qt_b = &qt[c * BLOCK..(c + 1) * BLOCK];
            let qd_b = &qd[c * BLOCK..(c + 1) * BLOCK];
            let p_b = &p_other[p_end - BLOCK..p_end];
            for k in 0..BLOCK {
                acc += qt_b[k] * p_b[BLOCK - 1 - k] + qd_b[k];
            }
            p_end -= BLOCK;
        }
        for k in blocks * BLOCK..m {
            acc += qt[k] * p_other[p_end - 1] + qd[k];
            p_end -= 1;
        }
        acc
    }

    /// The shared recursion body over any six mutable rows (heap-backed
    /// curves or scratch-arena planes alike), in the paper's exact
    /// summation order.
    fn run_rows(&self, p1: &mut [&mut [f64]; 3], p2: &mut [&mut [f64]; 3], steps: usize) {
        let q1 = self.params.row(0);
        let q2 = self.params.row(1);
        for m in 1..=steps {
            for j in 0..3 {
                let acc1 = Self::convolve(&q1[0], &q1[j + 1], &*p2[j], m);
                let acc2 = Self::convolve(&q2[0], &q2[j + 1], &*p1[j], m);
                p1[j][m] = acc1.clamp(0.0, 1.0);
                p2[j][m] = acc2.clamp(0.0, 1.0);
            }
        }
    }

    /// Runs the recursion once up to `steps` and returns all six
    /// `P_{init,j}(m)` curves. Every value is bit-identical to what
    /// [`crate::smp::SparseSolver`] computes at the same `m`.
    pub fn interval_curves(&self, steps: usize) -> Result<IntervalCurves, CoreError> {
        if steps > self.params.horizon() {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.params.horizon(),
            });
        }
        fgcs_runtime::counter_add!("core.batch.runs", 1);
        fgcs_runtime::counter_add!("core.batch.steps", steps as u64);
        let mut p1: [Vec<f64>; 3] = [
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
        ];
        let mut p2: [Vec<f64>; 3] = [
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
            vec![0.0; steps + 1],
        ];
        {
            let [a, b, c] = &mut p1;
            let [d, e, f] = &mut p2;
            self.run_rows(
                &mut [a.as_mut_slice(), b.as_mut_slice(), c.as_mut_slice()],
                &mut [d.as_mut_slice(), e.as_mut_slice(), f.as_mut_slice()],
                steps,
            );
        }
        Ok(IntervalCurves { p1, p2 })
    }

    /// The materialized `TR(m)` curve from a single recursion run whose
    /// six streams live in the caller's [`crate::smp::SolveScratch`] arena — only the
    /// two output curves are allocated. Bit-identical to [`Self::tr_curve`]
    /// (same convolution, same order, same clamps).
    pub fn tr_curve_with(
        &self,
        scratch: &mut crate::smp::SolveScratch,
        steps: usize,
    ) -> Result<TrCurve, CoreError> {
        if steps > self.params.horizon() {
            return Err(CoreError::HorizonTooLong {
                requested: steps,
                available: self.params.horizon(),
            });
        }
        fgcs_runtime::counter_add!("core.batch.runs", 1);
        fgcs_runtime::counter_add!("core.batch.steps", steps as u64);
        let [a, b, c, d, e, f] = scratch.six_planes(steps);
        let mut p1 = [a, b, c];
        let mut p2 = [d, e, f];
        self.run_rows(&mut p1, &mut p2, steps);
        Ok(TrCurve::from_rows(
            self.params.step_secs(),
            [&*p1[0], &*p1[1], &*p1[2]],
            [&*p2[0], &*p2[1], &*p2[2]],
        ))
    }

    /// The materialized `TR(m)` curve for `m = 0..=steps`, both initial
    /// states, from a single recursion run (thread-local scratch arena).
    pub fn tr_curve(&self, steps: usize) -> Result<TrCurve, CoreError> {
        crate::smp::with_thread_scratch(|scratch| self.tr_curve_with(scratch, steps))
    }

    /// Answers a whole sweep of horizons from one recursion run at the
    /// longest of them. Results are aligned with `horizons` (which need not
    /// be sorted) and bit-identical to independent solves at each horizon.
    pub fn tr_at_horizons(&self, init: State, horizons: &[usize]) -> Result<Vec<f64>, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let Some(&max) = horizons.iter().max() else {
            return Ok(Vec::new());
        };
        fgcs_runtime::histogram_record!("core.batch.sweep_size", horizons.len() as u64);
        let curve = self.tr_curve(max)?;
        Ok(horizons
            .iter()
            .map(|&m| curve.tr(init, m).expect("m <= max horizon by construction"))
            .collect())
    }
}

/// One machine's TR query in a cluster-wide sweep.
#[derive(Debug, Clone, Copy)]
pub struct ClusterQuery<'a> {
    /// Stable host identifier — the kernel-cache key component.
    pub host: u64,
    /// The machine's monitoring history.
    pub history: &'a HistoryStore,
    /// The machine's state at the window start.
    pub init: State,
}

/// Predicts TR for every machine of a cluster in parallel, in query order.
///
/// Each machine's Q/H estimation and solve runs on a worker thread via
/// [`fgcs_runtime::parallel::par_map`]; the result vector is ordered
/// exactly like `queries` regardless of thread interleaving, so the output
/// equals the sequential loop element for element. With a [`QhCache`],
/// repeated sweeps skip the estimation step entirely on cache hits.
pub fn predict_cluster(
    predictor: &SmpPredictor,
    cache: Option<&QhCache>,
    queries: &[ClusterQuery<'_>],
    day_type: DayType,
    window: TimeWindow,
) -> Vec<Result<f64, CoreError>> {
    fgcs_runtime::counter_add!("core.batch.cluster_sweeps", 1);
    fgcs_runtime::histogram_record!("core.batch.sweep_size", queries.len() as u64);
    fgcs_runtime::parallel::par_map(queries, |q| match cache {
        Some(cache) => predictor.predict_cached(cache, q.host, q.history, day_type, window, q.init),
        None => predictor.predict(q.history, day_type, window, q.init),
    })
}

/// One machine's train/test evaluation in a cluster-wide sweep.
#[derive(Debug, Clone, Copy)]
pub struct EvalQuery<'a> {
    /// Training history (the statistics source).
    pub train: &'a HistoryStore,
    /// Test history (the empirical ground truth).
    pub test: &'a HistoryStore,
}

/// Runs [`evaluate_window`] for every machine in parallel, in query order
/// — the fan-out the figure sweeps (Fig. 5/7) use per (window, day-type)
/// cell.
pub fn evaluate_cluster(
    predictor: &SmpPredictor,
    queries: &[EvalQuery<'_>],
    day_type: DayType,
    window: TimeWindow,
) -> Vec<Result<WindowEvaluation, CoreError>> {
    fgcs_runtime::counter_add!("core.batch.cluster_sweeps", 1);
    fgcs_runtime::histogram_record!("core.batch.sweep_size", queries.len() as u64);
    fgcs_runtime::parallel::par_map(queries, |q| {
        evaluate_window(predictor, q.train, q.test, day_type, window)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smp::SparseSolver;
    use State::*;

    /// A kernel with S1 <-> S2 churn and failure leaks at several holding
    /// times — enough structure that every curve is nontrivial.
    fn churn_kernel(horizon: usize) -> SmpParams {
        let mut kernel: [[Vec<f64>; 4]; 2] = Default::default();
        for row in &mut kernel {
            for col in row.iter_mut() {
                *col = vec![0.0; horizon + 1];
            }
        }
        kernel[0][0][2] = 0.4; // S1 -> S2 at 2
        kernel[0][0][7] = 0.1; // S1 -> S2 at 7
        kernel[0][1][4] = 0.08; // S1 -> S3 at 4
        kernel[0][2][9] = 0.04; // S1 -> S4 at 9
        kernel[0][3][6] = 0.03; // S1 -> S5 at 6
        kernel[1][0][3] = 0.5; // S2 -> S1 at 3
        kernel[1][0][11] = 0.1; // S2 -> S1 at 11
        kernel[1][1][5] = 0.1; // S2 -> S3 at 5
        kernel[1][3][8] = 0.05; // S2 -> S5 at 8
        SmpParams::from_kernel(6, kernel)
    }

    #[test]
    fn batched_curve_is_bit_identical_to_standalone_solves() {
        let params = churn_kernel(120);
        let batch = BatchSolver::new(&params).tr_curve(120).unwrap();
        let paper = SparseSolver::new(&params);
        for init in [S1, S2] {
            for m in 0..=120usize {
                let batched = batch.tr(init, m).unwrap();
                let standalone = paper.temporal_reliability(init, m).unwrap();
                assert_eq!(
                    batched.to_bits(),
                    standalone.to_bits(),
                    "init {init} m {m}: batched {batched} vs standalone {standalone}"
                );
            }
        }
    }

    #[test]
    fn interval_curves_match_paper_solver_bitwise() {
        let params = churn_kernel(90);
        let curves = BatchSolver::new(&params).interval_curves(90).unwrap();
        let paper = SparseSolver::new(&params);
        for m in [1usize, 17, 43, 90] {
            let probs = paper.interval_probabilities(m).unwrap();
            for j in 0..3 {
                assert_eq!(curves.p1[j][m].to_bits(), probs.p1[j].to_bits());
                assert_eq!(curves.p2[j][m].to_bits(), probs.p2[j].to_bits());
            }
        }
    }

    #[test]
    fn sweep_answers_match_order_and_values() {
        let params = churn_kernel(100);
        let solver = BatchSolver::new(&params);
        let horizons = [50usize, 10, 100, 1, 0, 77];
        let sweep = solver.tr_at_horizons(S1, &horizons).unwrap();
        assert_eq!(sweep.len(), horizons.len());
        let paper = SparseSolver::new(&params);
        for (i, &m) in horizons.iter().enumerate() {
            let standalone = paper.temporal_reliability(S1, m).unwrap();
            assert_eq!(sweep[i].to_bits(), standalone.to_bits());
        }
    }

    #[test]
    fn empty_sweep_and_error_paths() {
        let params = churn_kernel(20);
        let solver = BatchSolver::new(&params);
        assert_eq!(solver.tr_at_horizons(S1, &[]).unwrap(), Vec::<f64>::new());
        assert!(matches!(
            solver.tr_at_horizons(S3, &[5]),
            Err(CoreError::FailureInitialState(S3))
        ));
        assert!(matches!(
            solver.tr_at_horizons(S1, &[21]),
            Err(CoreError::HorizonTooLong {
                requested: 21,
                available: 20
            })
        ));
        let curve = solver.tr_curve(20).unwrap();
        assert!(matches!(
            curve.tr(S1, 21),
            Err(CoreError::HorizonTooLong { .. })
        ));
        assert!(curve.curve(S4).is_err());
        assert_eq!(curve.horizon_steps(), 20);
        assert_eq!(curve.step_secs(), 6);
    }

    #[test]
    fn tr_curve_starts_at_one_and_is_monotone() {
        let params = churn_kernel(150);
        let curve = BatchSolver::new(&params).tr_curve(150).unwrap();
        for init in [S1, S2] {
            let c = curve.curve(init).unwrap();
            assert_eq!(c[0], 1.0);
            for w in c.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "TR increased: {} -> {}", w[0], w[1]);
            }
        }
    }
}
