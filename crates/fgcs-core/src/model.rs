//! Configuration of the availability model: the two empirically derived CPU
//! load thresholds, the transient-spike tolerance, the monitoring period and
//! the memory requirement of a guest job (paper §3).

use fgcs_runtime::impl_json_struct;

/// Parameters of the five-state availability model.
///
/// The defaults are the values used on the paper's Linux testbed:
/// `Th1 = 20 %`, `Th2 = 60 %` host CPU load, a 6-second monitoring period,
/// and a 1-minute tolerance for transient excursions above `Th2` (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityModel {
    /// `Th1`: host CPU load below which the guest may run at default
    /// priority (fraction in `[0, 1]`).
    pub th1: f64,
    /// `Th2`: host CPU load above which a guest at any priority causes
    /// noticeable slowdown and must be terminated (fraction in `[0, 1]`).
    pub th2: f64,
    /// Resource monitoring / discretisation period `d` in seconds.
    pub monitor_period_secs: u32,
    /// Excursions above `Th2` shorter than this are treated as transient:
    /// the guest is merely suspended, and the samples are folded into the
    /// surrounding operational state (§3.3: "last less than 1 minute").
    pub transient_tolerance_secs: u32,
    /// Memory (MB) a guest job's working set needs; when free memory drops
    /// below it the machine is in S4 (memory thrashing).
    pub guest_working_set_mb: f64,
    /// Heartbeat gap (seconds) beyond which the machine is declared revoked
    /// (S5). The paper compares the current time with the last monitor
    /// timestamp (§5.2); three missed periods is the conventional choice.
    pub heartbeat_gap_secs: u32,
}

impl_json_struct!(AvailabilityModel {
    th1,
    th2,
    monitor_period_secs,
    transient_tolerance_secs,
    guest_working_set_mb,
    heartbeat_gap_secs,
});

impl Default for AvailabilityModel {
    fn default() -> Self {
        AvailabilityModel {
            th1: 0.20,
            th2: 0.60,
            monitor_period_secs: 6,
            transient_tolerance_secs: 60,
            guest_working_set_mb: 100.0,
            heartbeat_gap_secs: 18,
        }
    }
}

impl AvailabilityModel {
    /// Validates the configuration, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.th1) {
            return Err(format!("th1 must be in [0,1], got {}", self.th1));
        }
        if !(0.0..=1.0).contains(&self.th2) {
            return Err(format!("th2 must be in [0,1], got {}", self.th2));
        }
        if self.th1 >= self.th2 {
            return Err(format!(
                "th1 ({}) must be below th2 ({})",
                self.th1, self.th2
            ));
        }
        if self.monitor_period_secs == 0 {
            return Err("monitor period must be positive".into());
        }
        if self.guest_working_set_mb < 0.0 {
            return Err("guest working set must be non-negative".into());
        }
        Ok(())
    }

    /// Transient tolerance expressed in monitoring steps (rounded down).
    #[must_use]
    pub fn transient_tolerance_steps(&self) -> usize {
        (self.transient_tolerance_secs / self.monitor_period_secs) as usize
    }

    /// Number of samples in one day at the monitoring period.
    #[must_use]
    pub fn samples_per_day(&self) -> usize {
        (crate::window::SECS_PER_DAY / self.monitor_period_secs) as usize
    }
}

/// One observation from the resource monitor: everything the classifier
/// needs to assign an availability state (paper §5.2 — obtainable without
/// special privileges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSample {
    /// Total CPU usage of all host processes, as a fraction in `[0, 1]`.
    pub host_cpu: f64,
    /// Free physical memory in MB.
    pub free_mem_mb: f64,
    /// Whether the monitor heartbeat was current (false ⇒ machine revoked).
    pub alive: bool,
}

impl_json_struct!(LoadSample {
    host_cpu,
    free_mem_mb,
    alive,
});

impl LoadSample {
    /// An idle, healthy machine.
    #[must_use]
    pub fn idle(free_mem_mb: f64) -> LoadSample {
        LoadSample {
            host_cpu: 0.0,
            free_mem_mb,
            alive: true,
        }
    }

    /// A revoked machine (load/memory readings are meaningless).
    #[must_use]
    pub fn revoked() -> LoadSample {
        LoadSample {
            host_cpu: 0.0,
            free_mem_mb: 0.0,
            alive: false,
        }
    }

    /// Whether the readings are physically plausible: a finite CPU load in
    /// `[0, 1]` and finite, non-negative free memory. Real monitors emit
    /// NaN/±inf/out-of-range values under contention; the threshold
    /// comparisons in the classifier would silently misfile such garbage
    /// (NaN fails every `>` test and classifies as idle), so insane samples
    /// must be repaired *before* classification.
    #[must_use]
    pub fn is_sane(&self) -> bool {
        self.host_cpu.is_finite()
            && (0.0..=1.0).contains(&self.host_cpu)
            && self.free_mem_mb.is_finite()
            && self.free_mem_mb >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let m = AvailabilityModel::default();
        assert_eq!(m.th1, 0.20);
        assert_eq!(m.th2, 0.60);
        assert_eq!(m.monitor_period_secs, 6);
        assert_eq!(m.transient_tolerance_secs, 60);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn samples_per_day_at_six_seconds() {
        assert_eq!(AvailabilityModel::default().samples_per_day(), 14_400);
    }

    #[test]
    fn transient_tolerance_steps_is_ten() {
        assert_eq!(AvailabilityModel::default().transient_tolerance_steps(), 10);
    }

    #[test]
    fn validation_rejects_inverted_thresholds() {
        let m = AvailabilityModel {
            th1: 0.7,
            th2: 0.6,
            ..AvailabilityModel::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let m = AvailabilityModel {
            th1: -0.1,
            ..AvailabilityModel::default()
        };
        assert!(m.validate().is_err());
        let m = AvailabilityModel {
            th2: 1.5,
            ..AvailabilityModel::default()
        };
        assert!(m.validate().is_err());
        let m = AvailabilityModel {
            monitor_period_secs: 0,
            ..AvailabilityModel::default()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn sample_constructors() {
        let s = LoadSample::idle(512.0);
        assert!(s.alive);
        assert_eq!(s.host_cpu, 0.0);
        let r = LoadSample::revoked();
        assert!(!r.alive);
    }

    #[test]
    fn sanity_check_rejects_garbage_readings() {
        assert!(LoadSample::idle(512.0).is_sane());
        assert!(LoadSample::revoked().is_sane());
        let nan = LoadSample {
            host_cpu: f64::NAN,
            ..LoadSample::idle(512.0)
        };
        assert!(!nan.is_sane());
        let inf_mem = LoadSample {
            free_mem_mb: f64::INFINITY,
            ..LoadSample::idle(512.0)
        };
        assert!(!inf_mem.is_sane());
        let over = LoadSample {
            host_cpu: 1.5,
            ..LoadSample::idle(512.0)
        };
        assert!(!over.is_sane());
        let neg_mem = LoadSample {
            free_mem_mb: -1.0,
            ..LoadSample::idle(512.0)
        };
        assert!(!neg_mem.is_sane());
    }
}
