//! The five-state resource availability model (paper §3.3, Figure 1).

use fgcs_runtime::impl_json_enum;

/// One of the five availability states of a host machine.
///
/// * `S1` — light host CPU load (`L_H < Th1`): a guest process runs at
///   default priority. Also covers transient excursions above `Th2` shorter
///   than the tolerance, during which the guest is merely suspended.
/// * `S2` — heavy host CPU load (`Th1 ≤ L_H ≤ Th2`): the guest runs at the
///   lowest priority (reniced). Also covers transient excursions above `Th2`.
/// * `S3` — host CPU load steadily above `Th2`: the guest must be terminated
///   (UEC, unrecoverable for the guest).
/// * `S4` — not enough free memory for the guest's working set: memory
///   thrashing, the guest must be terminated (UEC, unrecoverable).
/// * `S5` — the machine was revoked by its owner or failed (URR,
///   unrecoverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum State {
    /// Full resource availability for the guest process.
    S1,
    /// Availability only at the lowest guest priority.
    S2,
    /// CPU unavailability (UEC).
    S3,
    /// Memory thrashing (UEC).
    S4,
    /// Machine unavailability (URR).
    S5,
}

impl_json_enum!(State { S1, S2, S3, S4, S5 });

impl State {
    /// All five states in index order.
    pub const ALL: [State; 5] = [State::S1, State::S2, State::S3, State::S4, State::S5];

    /// The two operational states a guest can run in.
    pub const OPERATIONAL: [State; 2] = [State::S1, State::S2];

    /// The three unrecoverable failure states.
    pub const FAILURE: [State; 3] = [State::S3, State::S4, State::S5];

    /// Zero-based index (S1 → 0, …, S5 → 4).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            State::S1 => 0,
            State::S2 => 1,
            State::S3 => 2,
            State::S4 => 3,
            State::S5 => 4,
        }
    }

    /// Inverse of [`State::index`].
    ///
    /// # Panics
    /// Panics if `i >= 5`.
    #[must_use]
    pub fn from_index(i: usize) -> State {
        State::ALL[i]
    }

    /// `true` for S3, S4 and S5 — the states that kill a guest job.
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(self, State::S3 | State::S4 | State::S5)
    }

    /// `true` for S1 and S2.
    #[must_use]
    pub fn is_operational(self) -> bool {
        !self.is_failure()
    }

    /// The other operational state (S1 ↔ S2); `None` for failure states.
    #[must_use]
    pub fn other_operational(self) -> Option<State> {
        match self {
            State::S1 => Some(State::S2),
            State::S2 => Some(State::S1),
            _ => None,
        }
    }
}

impl std::fmt::Display for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.index() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for s in State::ALL {
            assert_eq!(State::from_index(s.index()), s);
        }
    }

    #[test]
    fn failure_partition() {
        let failures: Vec<State> = State::ALL.into_iter().filter(|s| s.is_failure()).collect();
        assert_eq!(failures, State::FAILURE.to_vec());
        let oper: Vec<State> = State::ALL
            .into_iter()
            .filter(|s| s.is_operational())
            .collect();
        assert_eq!(oper, State::OPERATIONAL.to_vec());
    }

    #[test]
    fn other_operational_pairs() {
        assert_eq!(State::S1.other_operational(), Some(State::S2));
        assert_eq!(State::S2.other_operational(), Some(State::S1));
        assert_eq!(State::S3.other_operational(), None);
        assert_eq!(State::S5.other_operational(), None);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(State::S1.to_string(), "S1");
        assert_eq!(State::S5.to_string(), "S5");
    }
}
