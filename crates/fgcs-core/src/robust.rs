//! Graceful-degradation prediction: a fallback chain that always produces
//! a *tagged* temporal reliability instead of an error.
//!
//! The strict [`SmpPredictor`] is the right
//! tool when history is known-good: an empty or uncovered window is a
//! caller bug and deserves an error. A scheduler polling dozens of faulty
//! volunteer hosts is in a different regime — history may be quarantined,
//! truncated, or temporarily missing, and "no answer" forces the scheduler
//! to invent one (the old `unwrap_or(0.5)`). [`RobustPredictor`] makes the
//! inventing explicit and auditable: every TR is tagged with the
//! [`PredictionQuality`] of the path that produced it, and the chain
//! degrades in order of information content:
//!
//! 1. **Exact** — fresh kernel from the live history (via the `QhCache`);
//! 2. **Stale** — a kernel cached from an earlier history snapshot for the
//!    same coordinates;
//! 3. **Widened** — re-estimate with relaxed history selection (both day
//!    types, then additionally the midnight-anchored window of the same
//!    length), trading specificity for coverage;
//! 4. **Prior** — a conservative fixed TR when the host has no usable
//!    history at all.
//!
//! Only a failure initial state remains a hard error: predicting
//! reliability for a guest on an already-failed host is a contract
//! violation no fallback can repair.

use crate::cache::QhCache;
use crate::error::CoreError;
use crate::log::HistoryStore;
use crate::predictor::SmpPredictor;
use crate::state::State;
use crate::window::{DayType, TimeWindow};

/// How a [`QualifiedTr`] was obtained, best first. The discriminant order
/// matches the fallback chain, so `quality_a < quality_b` means "a came
/// from a better-informed path".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredictionQuality {
    /// Fresh kernel estimated from the live history.
    Exact,
    /// Kernel reused from an earlier history snapshot of the same
    /// coordinates.
    Stale,
    /// Kernel re-estimated under relaxed history selection.
    Widened,
    /// No usable history: the conservative prior.
    Prior,
}

fgcs_runtime::impl_json_enum!(PredictionQuality {
    Exact,
    Stale,
    Widened,
    Prior,
});

impl PredictionQuality {
    /// A multiplicative confidence discount a scheduler can apply when
    /// ranking hosts: degraded answers should lose ties against exact ones.
    #[must_use]
    pub fn confidence(self) -> f64 {
        match self {
            PredictionQuality::Exact => 1.0,
            PredictionQuality::Stale => 0.95,
            PredictionQuality::Widened => 0.85,
            PredictionQuality::Prior => 0.70,
        }
    }

    /// Whether the answer came from any path below Exact.
    #[must_use]
    pub fn is_degraded(self) -> bool {
        self != PredictionQuality::Exact
    }
}

impl std::fmt::Display for PredictionQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PredictionQuality::Exact => "exact",
            PredictionQuality::Stale => "stale",
            PredictionQuality::Widened => "widened",
            PredictionQuality::Prior => "prior",
        };
        f.write_str(s)
    }
}

/// A temporal reliability together with the quality of the path that
/// produced it. The TR is always clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualifiedTr {
    /// The predicted temporal reliability, in `[0, 1]`.
    pub tr: f64,
    /// How the prediction was obtained.
    pub quality: PredictionQuality,
}

fgcs_runtime::impl_json_struct!(QualifiedTr { tr, quality });

impl QualifiedTr {
    /// The TR discounted by the quality confidence — the scalar a
    /// ranking scheduler should sort by.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.tr * self.quality.confidence()
    }
}

/// Default conservative prior TR: pessimistic enough that a host with no
/// history loses to any host with a decent record, optimistic enough that
/// an empty cluster still schedules work.
pub const DEFAULT_PRIOR_TR: f64 = 0.35;

/// The graceful-degradation wrapper around [`SmpPredictor`]: never errors
/// on missing or degraded history, only on a failure initial state.
#[derive(Debug, Clone, Copy)]
pub struct RobustPredictor {
    predictor: SmpPredictor,
    prior_tr: f64,
}

impl RobustPredictor {
    /// Wraps a strict predictor with the default prior.
    #[must_use]
    pub fn new(predictor: SmpPredictor) -> RobustPredictor {
        RobustPredictor {
            predictor,
            prior_tr: DEFAULT_PRIOR_TR,
        }
    }

    /// Overrides the conservative prior TR (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_prior_tr(mut self, prior_tr: f64) -> RobustPredictor {
        self.prior_tr = prior_tr.clamp(0.0, 1.0);
        self
    }

    /// The wrapped strict predictor.
    #[must_use]
    pub fn predictor(&self) -> &SmpPredictor {
        &self.predictor
    }

    /// The prior TR used at the bottom of the chain.
    #[must_use]
    pub fn prior_tr(&self) -> f64 {
        self.prior_tr
    }

    /// Predicts TR through the fallback chain. Errors only when `init` is
    /// a failure state; every history problem degrades instead.
    pub fn predict(
        &self,
        cache: &QhCache,
        host: u64,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<QualifiedTr, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let steps = window.steps(self.predictor.model().monitor_period_secs);

        // 1. Exact: fresh kernel from the live history.
        if let Ok(params) = cache.get_or_estimate(&self.predictor, host, history, day_type, window)
        {
            if let Ok(tr) = self.predictor.solve_tr(&params, init, steps) {
                return Ok(self.tag(tr, PredictionQuality::Exact));
            }
        }

        // 2. Stale: a kernel from an earlier history snapshot of the same
        // coordinates.
        if let Some(params) = cache.get_stale(&self.predictor, host, day_type, window) {
            if let Ok(tr) = self.predictor.solve_tr(&params, init, steps) {
                return Ok(self.tag(tr, PredictionQuality::Stale));
            }
        }

        // 3. Widened: relax the history selection — first both day types
        // over the same window, then additionally the midnight-anchored
        // window of the same length (any same-length stretch of any day).
        let widened = self.predictor.with_all_day_types();
        let attempts = [window, TimeWindow::new(0, window.len_secs)];
        for w in attempts {
            if let Ok(params) = widened.estimate_params(history, day_type, w) {
                if let Ok(tr) = widened.solve_tr(&params, init, steps) {
                    return Ok(self.tag(tr, PredictionQuality::Widened));
                }
            }
        }

        // 4. Prior: nothing usable — answer conservatively rather than
        // not at all.
        Ok(self.tag(self.prior_tr, PredictionQuality::Prior))
    }

    fn tag(&self, tr: f64, quality: PredictionQuality) -> QualifiedTr {
        fgcs_runtime::counter_add!(
            match quality {
                PredictionQuality::Exact => "core.robust.exact",
                PredictionQuality::Stale => "core.robust.stale",
                PredictionQuality::Widened => "core.robust.widened",
                PredictionQuality::Prior => "core.robust.prior",
            },
            1
        );
        QualifiedTr {
            tr: tr.clamp(0.0, 1.0),
            quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{DayLog, StateLog};
    use crate::model::AvailabilityModel;
    use State::*;

    fn quiet_store(days: usize) -> HistoryStore {
        let mut s = HistoryStore::new();
        for day in 0..days {
            s.push_day(DayLog::new(day, StateLog::new(6, vec![S1; 1000])));
        }
        s
    }

    fn robust() -> RobustPredictor {
        RobustPredictor::new(SmpPredictor::new(AvailabilityModel::default()))
    }

    #[test]
    fn exact_on_healthy_history_matches_strict_predictor() {
        let cache = QhCache::new(8);
        let history = quiet_store(5);
        let r = robust();
        let w = TimeWindow::new(0, 600);
        let q = r
            .predict(&cache, 1, &history, DayType::Weekday, w, S1)
            .unwrap();
        assert_eq!(q.quality, PredictionQuality::Exact);
        let strict = r
            .predictor()
            .predict(&history, DayType::Weekday, w, S1)
            .unwrap();
        assert_eq!(q.tr.to_bits(), strict.to_bits());
    }

    #[test]
    fn stale_kernel_serves_after_history_loss() {
        let cache = QhCache::new(8);
        let history = quiet_store(5);
        let r = robust();
        let w = TimeWindow::new(0, 600);
        // Warm the cache, then lose the history.
        let exact = r
            .predict(&cache, 1, &history, DayType::Weekday, w, S1)
            .unwrap();
        let empty = HistoryStore::new();
        let q = r
            .predict(&cache, 1, &empty, DayType::Weekday, w, S1)
            .unwrap();
        assert_eq!(q.quality, PredictionQuality::Stale);
        assert_eq!(q.tr.to_bits(), exact.tr.to_bits());
    }

    #[test]
    fn widened_covers_day_type_starvation() {
        // Weekend-only history, weekday query, cold cache: the same-window
        // cross-day-type widening answers.
        let cache = QhCache::new(8);
        let mut history = HistoryStore::new();
        history.push_day(DayLog::new(5, StateLog::new(6, vec![S1; 1000])));
        history.push_day(DayLog::new(6, StateLog::new(6, vec![S1; 1000])));
        let r = robust();
        let w = TimeWindow::new(0, 600);
        let q = r
            .predict(&cache, 1, &history, DayType::Weekday, w, S1)
            .unwrap();
        assert_eq!(q.quality, PredictionQuality::Widened);
        assert_eq!(q.tr, 1.0);
    }

    #[test]
    fn prior_answers_when_nothing_is_usable() {
        let cache = QhCache::new(8);
        let empty = HistoryStore::new();
        let r = robust();
        let w = TimeWindow::new(0, 600);
        let q = r
            .predict(&cache, 9, &empty, DayType::Weekday, w, S1)
            .unwrap();
        assert_eq!(q.quality, PredictionQuality::Prior);
        assert_eq!(q.tr, DEFAULT_PRIOR_TR);
        let custom = robust().with_prior_tr(0.1);
        let q = custom
            .predict(&cache, 9, &empty, DayType::Weekday, w, S1)
            .unwrap();
        assert_eq!(q.tr, 0.1);
    }

    #[test]
    fn failure_init_is_still_a_hard_error() {
        let cache = QhCache::new(8);
        let history = quiet_store(5);
        let r = robust();
        let w = TimeWindow::new(0, 600);
        assert!(matches!(
            r.predict(&cache, 1, &history, DayType::Weekday, w, S5),
            Err(CoreError::FailureInitialState(S5))
        ));
    }

    #[test]
    fn quality_order_and_scores_are_monotone() {
        use PredictionQuality::*;
        assert!(Exact < Stale && Stale < Widened && Widened < Prior);
        assert!(Exact.confidence() > Stale.confidence());
        assert!(Stale.confidence() > Widened.confidence());
        assert!(Widened.confidence() > Prior.confidence());
        assert!(!Exact.is_degraded());
        assert!(Prior.is_degraded());
        let q = QualifiedTr {
            tr: 0.8,
            quality: Stale,
        };
        assert!((q.score() - 0.8 * 0.95).abs() < 1e-12);
    }

    #[test]
    fn qualified_tr_round_trips_through_json() {
        let q = QualifiedTr {
            tr: 0.5,
            quality: PredictionQuality::Widened,
        };
        let json = fgcs_runtime::json::to_string(&q);
        let back: QualifiedTr = fgcs_runtime::json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
