//! Classification of monitor samples into the five availability states,
//! including the transient-spike folding of paper §3.3.
//!
//! The raw per-sample rule is:
//!
//! * not alive → `S5`
//! * free memory below the guest working set → `S4`
//! * `L_H > Th2` → `S3` candidate
//! * `Th1 ≤ L_H ≤ Th2` → `S2`
//! * `L_H < Th1` → `S1`
//!
//! A run of `S3` candidates *shorter than the transient tolerance* does not
//! represent CPU unavailability: the guest is merely suspended and resumes
//! when the spike passes ("we find it very common that the host CPU load
//! which exceeds Th2 will drop down shortly after several seconds"). Such
//! runs are folded into the operational state surrounding them.

use crate::model::{AvailabilityModel, LoadSample};
use crate::state::State;

/// Classifies sample streams into state sequences under a given model.
#[derive(Debug, Clone, Copy)]
pub struct StateClassifier {
    model: AvailabilityModel,
    /// When `false`, transient >Th2 excursions are *not* folded back into
    /// S1/S2 — every above-threshold sample becomes S3. Used by the
    /// transient-folding ablation.
    fold_transients: bool,
}

impl StateClassifier {
    /// Creates a classifier with transient folding enabled (the paper's
    /// behaviour).
    #[must_use]
    pub fn new(model: AvailabilityModel) -> StateClassifier {
        StateClassifier {
            model,
            fold_transients: true,
        }
    }

    /// Disables transient folding (ablation).
    #[must_use]
    pub fn without_transient_folding(mut self) -> StateClassifier {
        self.fold_transients = false;
        self
    }

    /// The model this classifier uses.
    #[must_use]
    pub fn model(&self) -> &AvailabilityModel {
        &self.model
    }

    /// Classifies a single sample without transient context.
    ///
    /// Excursions above `Th2` are reported as `S3`; use [`Self::classify`]
    /// on a whole sequence to get transient folding.
    #[must_use]
    pub fn classify_sample(&self, s: &LoadSample) -> State {
        if !s.alive {
            State::S5
        } else if s.free_mem_mb < self.model.guest_working_set_mb {
            State::S4
        } else if s.host_cpu > self.model.th2 {
            State::S3
        } else if s.host_cpu >= self.model.th1 {
            State::S2
        } else {
            State::S1
        }
    }

    /// Classifies a uniformly sampled sequence, applying transient folding.
    ///
    /// ```
    /// use fgcs_core::classify::StateClassifier;
    /// use fgcs_core::model::{AvailabilityModel, LoadSample};
    /// use fgcs_core::state::State;
    ///
    /// let classifier = StateClassifier::new(AvailabilityModel::default());
    /// // A 5-sample spike above Th2 inside light load: folded into S1.
    /// let mut samples = vec![LoadSample { host_cpu: 0.1, free_mem_mb: 400.0, alive: true }; 30];
    /// for s in &mut samples[10..15] { s.host_cpu = 0.9; }
    /// let states = classifier.classify(&samples);
    /// assert!(states.iter().all(|&s| s == State::S1));
    /// ```
    #[must_use]
    pub fn classify(&self, samples: &[LoadSample]) -> Vec<State> {
        let mut states: Vec<State> = samples.iter().map(|s| self.classify_sample(s)).collect();
        if self.fold_transients {
            self.fold(&mut states);
        }
        states
    }

    /// Folds short `S3` runs into the neighbouring operational state.
    ///
    /// A run qualifies as transient when it is strictly shorter than the
    /// tolerance (in steps) *and* at least one neighbouring sample is
    /// operational. The preceding state wins when both neighbours are
    /// operational — the guest was running at that priority when the spike
    /// hit and resumes in the same configuration.
    fn fold(&self, states: &mut [State]) {
        let tol = self.model.transient_tolerance_steps();
        if tol == 0 {
            return;
        }
        let n = states.len();
        let mut i = 0;
        while i < n {
            if states[i] != State::S3 {
                i += 1;
                continue;
            }
            // Find the end of this S3 run.
            let start = i;
            while i < n && states[i] == State::S3 {
                i += 1;
            }
            let run_len = i - start;
            if run_len >= tol {
                continue; // steady overload: genuine S3
            }
            let before = (start > 0).then(|| states[start - 1]);
            let after = (i < n).then(|| states[i]);
            let fold_to = match (before, after) {
                (Some(b), _) if b.is_operational() => Some(b),
                (_, Some(a)) if a.is_operational() => Some(a),
                _ => None,
            };
            if let Some(target) = fold_to {
                for s in &mut states[start..start + run_len] {
                    *s = target;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AvailabilityModel {
        AvailabilityModel::default()
    }

    fn sample(cpu: f64) -> LoadSample {
        LoadSample {
            host_cpu: cpu,
            free_mem_mb: 1024.0,
            alive: true,
        }
    }

    #[test]
    fn per_sample_thresholds() {
        let c = StateClassifier::new(model());
        assert_eq!(c.classify_sample(&sample(0.05)), State::S1);
        assert_eq!(c.classify_sample(&sample(0.19)), State::S1);
        assert_eq!(c.classify_sample(&sample(0.20)), State::S2);
        assert_eq!(c.classify_sample(&sample(0.60)), State::S2);
        assert_eq!(c.classify_sample(&sample(0.61)), State::S3);
        assert_eq!(c.classify_sample(&sample(1.0)), State::S3);
    }

    #[test]
    fn memory_thrashing_beats_cpu() {
        let c = StateClassifier::new(model());
        let s = LoadSample {
            host_cpu: 0.9,
            free_mem_mb: 10.0,
            alive: true,
        };
        assert_eq!(c.classify_sample(&s), State::S4);
    }

    #[test]
    fn revocation_beats_everything() {
        let c = StateClassifier::new(model());
        assert_eq!(c.classify_sample(&LoadSample::revoked()), State::S5);
    }

    #[test]
    fn short_spike_folds_into_preceding_state() {
        let c = StateClassifier::new(model());
        // tolerance = 10 steps; a 3-step spike inside S1 should vanish.
        let mut samples = vec![sample(0.1); 20];
        for s in &mut samples[5..8] {
            *s = sample(0.9);
        }
        let states = c.classify(&samples);
        assert!(states.iter().all(|&s| s == State::S1), "{states:?}");
    }

    #[test]
    fn spike_inside_s2_folds_into_s2() {
        let c = StateClassifier::new(model());
        let mut samples = vec![sample(0.4); 20];
        for s in &mut samples[10..12] {
            *s = sample(0.95);
        }
        let states = c.classify(&samples);
        assert!(states.iter().all(|&s| s == State::S2), "{states:?}");
    }

    #[test]
    fn long_overload_stays_s3() {
        let c = StateClassifier::new(model());
        // tolerance = 10 steps; a 10-step run is steady overload.
        let mut samples = vec![sample(0.1); 30];
        for s in &mut samples[5..15] {
            *s = sample(0.9);
        }
        let states = c.classify(&samples);
        assert_eq!(states[5], State::S3);
        assert_eq!(states[14], State::S3);
        assert_eq!(states[4], State::S1);
        assert_eq!(states[15], State::S1);
    }

    #[test]
    fn spike_at_sequence_start_folds_forward() {
        let c = StateClassifier::new(model());
        let mut samples = vec![sample(0.3); 20];
        for s in &mut samples[0..3] {
            *s = sample(0.9);
        }
        let states = c.classify(&samples);
        assert!(states.iter().all(|&s| s == State::S2), "{states:?}");
    }

    #[test]
    fn spike_bounded_by_failures_is_not_folded() {
        let c = StateClassifier::new(model());
        // S5 | S3-spike | S5: no operational neighbour, stays S3.
        let mut samples = vec![LoadSample::revoked(); 10];
        for s in &mut samples[4..6] {
            *s = sample(0.9);
        }
        let states = c.classify(&samples);
        assert_eq!(states[4], State::S3);
        assert_eq!(states[5], State::S3);
    }

    #[test]
    fn ablation_disables_folding() {
        let c = StateClassifier::new(model()).without_transient_folding();
        let mut samples = vec![sample(0.1); 20];
        samples[5] = sample(0.9);
        let states = c.classify(&samples);
        assert_eq!(states[5], State::S3);
    }

    #[test]
    fn whole_sequence_spike_with_no_neighbours() {
        let c = StateClassifier::new(model());
        let samples = vec![sample(0.9); 5]; // shorter than tolerance
        let states = c.classify(&samples);
        // Nothing to fold into: remains S3.
        assert!(states.iter().all(|&s| s == State::S3));
    }

    #[test]
    fn empty_sequence_is_fine() {
        let c = StateClassifier::new(model());
        assert!(c.classify(&[]).is_empty());
    }

    #[test]
    fn adjacent_spikes_fold_independently() {
        let c = StateClassifier::new(model());
        let mut samples = vec![sample(0.1); 40];
        for s in &mut samples[5..8] {
            *s = sample(0.9);
        }
        for s in &mut samples[20..24] {
            *s = sample(0.9);
        }
        let states = c.classify(&samples);
        assert!(states.iter().all(|&s| s == State::S1), "{states:?}");
    }
}
