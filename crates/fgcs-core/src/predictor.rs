//! End-to-end temporal reliability prediction and its empirical ground
//! truth, as used in the paper's accuracy experiments (§6.2, §7.2).

use fgcs_runtime::impl_json_struct;
use fgcs_runtime::rng::Rng;

use crate::batch::{BatchSolver, TrCurve};
use crate::cache::QhCache;
use crate::error::CoreError;
use crate::log::HistoryStore;
use crate::model::AvailabilityModel;
use crate::smp::{FastSolver, IntervalProbs, SmpParams, SparseSolver};
use crate::state::State;
use crate::window::{DayType, TimeWindow};

/// Which Eq.-3 solver backs a predictor's queries.
///
/// The two policies answer from the same estimated kernel and differ only
/// in floating-point association: the fast path is property-tested to stay
/// within 1e-12 (unit scale) of the oracle at every horizon, and the chaos
/// harness asserts scheduler *decisions* are identical under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverPolicy {
    /// The production path (default): [`FastSolver`]'s SoA streams and
    /// scratch arenas — allocation-free when warm, `O(steps · nnz)`.
    #[default]
    Fast,
    /// The verbatim paper-order recursion ([`SparseSolver`] /
    /// [`BatchSolver`]) — the bitwise oracle, used by verification
    /// harnesses and ablations.
    PaperOracle,
}

/// The SMP-based temporal reliability predictor.
///
/// Prediction for a window on a weekday (weekend) draws its statistics from
/// the corresponding window of the most recent weekdays (weekends) in the
/// history store — no training phase or model fitting is required (§1).
#[derive(Debug, Clone, Copy)]
pub struct SmpPredictor {
    model: AvailabilityModel,
    /// Use at most this many recent days of history (`None` = all).
    max_history_days: Option<usize>,
    /// When `false`, history from *both* day types is used (ablation of the
    /// paper's same-day-type selection).
    same_day_type_only: bool,
    /// Which solver answers the queries.
    solver_policy: SolverPolicy,
}

impl SmpPredictor {
    /// Creates a predictor with the paper's behaviour: all available
    /// same-day-type history, solved on the fast path.
    #[must_use]
    pub fn new(model: AvailabilityModel) -> SmpPredictor {
        SmpPredictor {
            model,
            max_history_days: None,
            same_day_type_only: true,
            solver_policy: SolverPolicy::default(),
        }
    }

    /// Restricts the statistics to the `n` most recent matching days.
    #[must_use]
    pub fn with_max_history_days(mut self, n: usize) -> SmpPredictor {
        self.max_history_days = Some(n);
        self
    }

    /// Uses history from both weekdays and weekends (ablation).
    #[must_use]
    pub fn with_all_day_types(mut self) -> SmpPredictor {
        self.same_day_type_only = false;
        self
    }

    /// Selects the solver backing the queries (fast path vs paper oracle).
    #[must_use]
    pub fn with_solver_policy(mut self, policy: SolverPolicy) -> SmpPredictor {
        self.solver_policy = policy;
        self
    }

    /// The solver policy in effect.
    #[must_use]
    pub fn solver_policy(&self) -> SolverPolicy {
        self.solver_policy
    }

    /// The availability model configuration.
    #[must_use]
    pub fn model(&self) -> &AvailabilityModel {
        &self.model
    }

    /// Solves one scalar TR under the configured policy.
    pub(crate) fn solve_tr(
        &self,
        params: &SmpParams,
        init: State,
        steps: usize,
    ) -> Result<f64, CoreError> {
        match self.solver_policy {
            SolverPolicy::Fast => FastSolver::new(params).temporal_reliability(init, steps),
            SolverPolicy::PaperOracle => {
                SparseSolver::new(params).temporal_reliability(init, steps)
            }
        }
    }

    /// Solves the six interval probabilities under the configured policy.
    pub(crate) fn solve_interval_probs(
        &self,
        params: &SmpParams,
        steps: usize,
    ) -> Result<IntervalProbs, CoreError> {
        match self.solver_policy {
            SolverPolicy::Fast => FastSolver::new(params).interval_probabilities(steps),
            SolverPolicy::PaperOracle => SparseSolver::new(params).interval_probabilities(steps),
        }
    }

    /// Solves the batched TR curve under the configured policy.
    pub(crate) fn solve_tr_curve(
        &self,
        params: &SmpParams,
        steps: usize,
    ) -> Result<TrCurve, CoreError> {
        match self.solver_policy {
            SolverPolicy::Fast => FastSolver::new(params).tr_curve(steps),
            SolverPolicy::PaperOracle => BatchSolver::new(params).tr_curve(steps),
        }
    }

    /// Solves the reliability curve under the configured policy.
    pub(crate) fn solve_reliability_curve(
        &self,
        params: &SmpParams,
        init: State,
        steps: usize,
    ) -> Result<Vec<f64>, CoreError> {
        match self.solver_policy {
            SolverPolicy::Fast => FastSolver::new(params).reliability_curve(init, steps),
            SolverPolicy::PaperOracle => SparseSolver::new(params).reliability_curve(init, steps),
        }
    }

    /// The history-selection knobs `(max_history_days,
    /// same_day_type_only)`, exactly as the kernel cache keys them.
    pub(crate) fn history_selection(&self) -> (Option<usize>, bool) {
        (self.max_history_days, self.same_day_type_only)
    }
}

/// Encodes the full input of a scalar solve — everything besides the kernel
/// itself — into one word for the per-kernel solve memo: the step count in
/// the high bits, the solver policy at bit 3, the initial state in the low
/// three bits.
pub(crate) fn solve_memo_key(init: State, policy: SolverPolicy, steps: usize) -> u64 {
    let state_bits = match init {
        State::S1 => 0u64,
        State::S2 => 1,
        State::S3 => 2,
        State::S4 => 3,
        State::S5 => 4,
    };
    let policy_bit = match policy {
        SolverPolicy::Fast => 0u64,
        SolverPolicy::PaperOracle => 1,
    };
    ((steps as u64) << 4) | (policy_bit << 3) | state_bits
}

impl SmpPredictor {
    /// Estimates the SMP parameters for a window from the history store.
    pub fn estimate_params(
        &self,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
    ) -> Result<SmpParams, CoreError> {
        let _span = fgcs_runtime::time_span!("core.estimate_params_ns");
        fgcs_runtime::counter_add!("core.qh_estimations", 1);
        let step = self.model.monitor_period_secs;
        let mut slices = history.recent_windows(day_type, window, self.max_history_days);
        if !self.same_day_type_only {
            let other = match day_type {
                DayType::Weekday => DayType::Weekend,
                DayType::Weekend => DayType::Weekday,
            };
            slices.extend(history.recent_windows(other, window, self.max_history_days));
        }
        if slices.is_empty() {
            return Err(CoreError::EmptyHistory { window });
        }
        fgcs_runtime::histogram_record!("core.history_window_days", slices.len() as u64);
        let horizon = window.steps(step);
        let refs: Vec<&[State]> = slices.iter().map(Vec::as_slice).collect();
        Ok(SmpParams::estimate(&refs, step, horizon))
    }

    /// Predicts the temporal reliability for `window` on a day of
    /// `day_type`, given the machine's state at the window start.
    ///
    /// ```
    /// use fgcs_core::log::{DayLog, HistoryStore, StateLog};
    /// use fgcs_core::model::AvailabilityModel;
    /// use fgcs_core::predictor::SmpPredictor;
    /// use fgcs_core::state::State;
    /// use fgcs_core::window::{DayType, TimeWindow};
    ///
    /// // Three quiet Mondays-to-Wednesdays of history at a 6 s period.
    /// let mut history = HistoryStore::new();
    /// for day in 0..3 {
    ///     history.push_day(DayLog::new(day, StateLog::new(6, vec![State::S1; 14_400])));
    /// }
    /// let predictor = SmpPredictor::new(AvailabilityModel::default());
    /// let window = TimeWindow::from_hours(9.0, 2.0);
    /// let tr = predictor.predict(&history, DayType::Weekday, window, State::S1)?;
    /// assert_eq!(tr, 1.0); // nothing ever failed in that window
    /// # Ok::<(), fgcs_core::error::CoreError>(())
    /// ```
    pub fn predict(
        &self,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let _span = fgcs_runtime::time_span!("core.tr_query_ns");
        fgcs_runtime::counter_add!("core.tr_queries", 1);
        let params = self.estimate_params(history, day_type, window)?;
        let steps = window.steps(self.model.monitor_period_secs);
        // The fast path is property-tested within 1e-12 (unit scale) of the
        // paper's Eq.-3 recursion and asymptotically faster on estimated
        // kernels; `SolverPolicy::PaperOracle` swaps in the verbatim one.
        self.solve_tr(&params, init, steps)
    }

    /// Like [`SmpPredictor::predict`], but memoizes the estimated kernel in
    /// `cache` under `host` and the query coordinates: repeated queries for
    /// the same (host, window, day-class, history) skip the Q/H estimation
    /// entirely and produce the same TR bit for bit.
    ///
    /// Scalar solves are additionally memoized per *canonical kernel* in
    /// the cache's [dedup table](crate::cache::KernelDedup): when many
    /// hosts share one interned kernel (a fleet with a handful of
    /// availability classes), the Eq.-3 recursion runs once per
    /// `(kernel, init, policy, steps)` and every other host reads the
    /// stored value — the same bits the solve would have produced, since
    /// both policies are deterministic functions of exactly those inputs.
    pub fn predict_cached(
        &self,
        cache: &QhCache,
        host: u64,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<f64, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let _span = fgcs_runtime::time_span!("core.tr_query_ns");
        fgcs_runtime::counter_add!("core.tr_queries", 1);
        let params = cache.get_or_estimate(self, host, history, day_type, window)?;
        let steps = window.steps(self.model.monitor_period_secs);
        let key = solve_memo_key(init, self.solver_policy, steps);
        if let Some(tr) = cache.dedup().memo_get(&params, key) {
            return Ok(tr);
        }
        let tr = self.solve_tr(&params, init, steps)?;
        cache.dedup().memo_put(&params, key, tr);
        Ok(tr)
    }

    /// Predicts the full temporal-reliability curve `TR(m)` over the window
    /// for *both* operational initial states from a single batched Eq.-3
    /// run — the entry point for multi-horizon sweeps (a job scheduler
    /// comparing deadlines, or a Fig. 5-style TR-vs-length plot sharing one
    /// kernel).
    pub fn predict_tr_curve(
        &self,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
    ) -> Result<TrCurve, CoreError> {
        let params = self.estimate_params(history, day_type, window)?;
        let steps = window.steps(self.model.monitor_period_secs);
        self.solve_tr_curve(&params, steps)
    }

    /// Predicts the temporal reliability together with a bootstrap
    /// confidence interval.
    ///
    /// The history days covering the window are resampled with replacement
    /// `n_boot` times; each resample re-estimates the kernel and recomputes
    /// TR, and the interval is the `(1−confidence)/2` and
    /// `(1+confidence)/2` quantiles of the bootstrap distribution. This is
    /// an extension beyond the paper: a scheduler comparing two machines
    /// whose point predictions differ by less than the interval width
    /// should treat them as equivalent.
    #[allow(clippy::too_many_arguments)] // window spec + bootstrap knobs are all load-bearing
    pub fn predict_with_ci<R: Rng + ?Sized>(
        &self,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
        init: State,
        n_boot: usize,
        confidence: f64,
        rng: &mut R,
    ) -> Result<TrPrediction, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let step = self.model.monitor_period_secs;
        let steps = window.steps(step);
        let slices = history.recent_windows(day_type, window, self.max_history_days);
        if slices.is_empty() {
            return Err(CoreError::EmptyHistory { window });
        }
        let refs: Vec<&[State]> = slices.iter().map(Vec::as_slice).collect();
        let params = SmpParams::estimate(&refs, step, steps);
        let tr = self.solve_tr(&params, init, steps)?;

        let mut boots = Vec::with_capacity(n_boot);
        for _ in 0..n_boot {
            let resample: Vec<&[State]> = (0..refs.len())
                .map(|_| refs[rng.range_usize(0, refs.len())])
                .collect();
            let p = SmpParams::estimate(&resample, step, steps);
            boots.push(self.solve_tr(&p, init, steps)?);
        }
        let confidence = confidence.clamp(0.0, 1.0);
        let lo_q = (1.0 - confidence) / 2.0;
        let hi_q = 1.0 - lo_q;
        Ok(TrPrediction {
            tr,
            ci_low: fgcs_math::stats::quantile(&boots, lo_q).unwrap_or(tr),
            ci_high: fgcs_math::stats::quantile(&boots, hi_q).unwrap_or(tr),
            bootstrap_samples: n_boot,
            history_days: refs.len(),
        })
    }

    /// Predicts the whole reliability curve `TR(m)` over the window.
    pub fn predict_curve(
        &self,
        history: &HistoryStore,
        day_type: DayType,
        window: TimeWindow,
        init: State,
    ) -> Result<Vec<f64>, CoreError> {
        if init.is_failure() {
            return Err(CoreError::FailureInitialState(init));
        }
        let params = self.estimate_params(history, day_type, window)?;
        let steps = window.steps(self.model.monitor_period_secs);
        self.solve_reliability_curve(&params, init, steps)
    }
}

/// A temporal-reliability prediction with bootstrap uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrPrediction {
    /// Point prediction from the full history.
    pub tr: f64,
    /// Lower bound of the bootstrap confidence interval.
    pub ci_low: f64,
    /// Upper bound of the bootstrap confidence interval.
    pub ci_high: f64,
    /// Number of bootstrap resamples used.
    pub bootstrap_samples: usize,
    /// Number of history days the estimate drew on.
    pub history_days: usize,
}

impl_json_struct!(TrPrediction {
    tr,
    ci_low,
    ci_high,
    bootstrap_samples,
    history_days,
});

impl TrPrediction {
    /// Width of the confidence interval.
    #[must_use]
    pub fn ci_width(&self) -> f64 {
        (self.ci_high - self.ci_low).max(0.0)
    }
}

/// The outcome of evaluating one (window, day-type) pair against a test set,
/// as in §6.2: predicted vs. empirically observed temporal reliability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowEvaluation {
    /// Mean predicted TR over the usable test days (each day predicted from
    /// its observed initial state).
    pub predicted: f64,
    /// Fraction of usable test days whose window survived without failure.
    pub empirical: f64,
    /// Number of test days that were usable (window covered, operational at
    /// the window start).
    pub days_used: usize,
}

impl_json_struct!(WindowEvaluation {
    predicted,
    empirical,
    days_used,
});

impl WindowEvaluation {
    /// The paper's error metric
    /// `abs(TR_predicted − TR_empirical) / TR_empirical`; `None` when the
    /// empirical TR is zero (the metric is undefined there).
    #[must_use]
    pub fn relative_error(&self) -> Option<f64> {
        if self.empirical > 0.0 {
            Some((self.predicted - self.empirical).abs() / self.empirical)
        } else {
            None
        }
    }
}

/// Computes the empirical temporal reliability of a window over the days of
/// a test store: the fraction of days — among those operational at the
/// window start — with no failure state inside the window.
///
/// Returns `None` when no test day is usable.
#[must_use]
pub fn empirical_tr(test: &HistoryStore, day_type: DayType, window: TimeWindow) -> Option<f64> {
    let mut used = 0usize;
    let mut survived = 0usize;
    for pos in 0..test.days().len() {
        if test.days()[pos].day_type != day_type {
            continue;
        }
        let Some(slice) = test.window_states(pos, window) else {
            continue;
        };
        if slice[0].is_failure() {
            continue; // no guest would be submitted here
        }
        used += 1;
        if slice[1..].iter().all(|s| s.is_operational()) {
            survived += 1;
        }
    }
    (used > 0).then(|| survived as f64 / used as f64)
}

/// Evaluates the *first-order Markov chain* ablation on a train/test split
/// for one window — the memoryless counterpart of [`evaluate_window`],
/// quantifying what the SMP's holding-time distributions buy.
pub fn evaluate_window_markov(
    predictor: &SmpPredictor,
    train: &HistoryStore,
    test: &HistoryStore,
    day_type: DayType,
    window: TimeWindow,
) -> Result<WindowEvaluation, CoreError> {
    let step = predictor.model().monitor_period_secs;
    let slices = train.recent_windows(day_type, window, None);
    if slices.is_empty() {
        return Err(CoreError::EmptyHistory { window });
    }
    let refs: Vec<&[State]> = slices.iter().map(Vec::as_slice).collect();
    let chain = crate::smp::MarkovChain::estimate(&refs, step);
    let steps = window.steps(step);
    let tr_s1 = chain.temporal_reliability(State::S1, steps)?;
    let tr_s2 = chain.temporal_reliability(State::S2, steps)?;

    let mut used = 0usize;
    let mut survived = 0usize;
    let mut predicted_sum = 0.0;
    for pos in 0..test.days().len() {
        if test.days()[pos].day_type != day_type {
            continue;
        }
        let Some(slice) = test.window_states(pos, window) else {
            continue;
        };
        let init = slice[0];
        if init.is_failure() {
            continue;
        }
        used += 1;
        predicted_sum += match init {
            State::S1 => tr_s1,
            _ => tr_s2,
        };
        if slice[1..].iter().all(|s| s.is_operational()) {
            survived += 1;
        }
    }
    if used == 0 {
        return Err(CoreError::EmptyHistory { window });
    }
    Ok(WindowEvaluation {
        predicted: predicted_sum / used as f64,
        empirical: survived as f64 / used as f64,
        days_used: used,
    })
}

/// Evaluates the predictor on a train/test split for one window: predicts
/// per test day from its observed initial state, and compares the average
/// prediction with the empirical survival fraction.
pub fn evaluate_window(
    predictor: &SmpPredictor,
    train: &HistoryStore,
    test: &HistoryStore,
    day_type: DayType,
    window: TimeWindow,
) -> Result<WindowEvaluation, CoreError> {
    let params = predictor.estimate_params(train, day_type, window)?;
    let steps = window.steps(predictor.model().monitor_period_secs);
    // Both possible predictions from ONE recursion run: the six interval
    // probabilities contain the S1 and S2 rows, so running the solver per
    // initial state would do the same work twice for identical values.
    let probs = predictor.solve_interval_probs(&params, steps)?;
    let tr_s1 = (1.0 - probs.failure_probability(State::S1)).clamp(0.0, 1.0);
    let tr_s2 = (1.0 - probs.failure_probability(State::S2)).clamp(0.0, 1.0);

    let mut used = 0usize;
    let mut survived = 0usize;
    let mut predicted_sum = 0.0;
    for pos in 0..test.days().len() {
        if test.days()[pos].day_type != day_type {
            continue;
        }
        let Some(slice) = test.window_states(pos, window) else {
            continue;
        };
        let init = slice[0];
        if init.is_failure() {
            continue;
        }
        used += 1;
        predicted_sum += match init {
            State::S1 => tr_s1,
            _ => tr_s2,
        };
        if slice[1..].iter().all(|s| s.is_operational()) {
            survived += 1;
        }
    }
    if used == 0 {
        return Err(CoreError::EmptyHistory { window });
    }
    Ok(WindowEvaluation {
        predicted: predicted_sum / used as f64,
        empirical: survived as f64 / used as f64,
        days_used: used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{DayLog, StateLog};
    use State::*;

    /// Builds a store whose every day repeats the given short-day pattern.
    /// Uses a 6-second step and days long enough for small test windows.
    fn store_of_days(patterns: &[Vec<State>]) -> HistoryStore {
        let mut store = HistoryStore::new();
        for (i, p) in patterns.iter().enumerate() {
            store.push_day(DayLog::new(i, StateLog::new(6, p.clone())));
        }
        store
    }

    fn model() -> AvailabilityModel {
        AvailabilityModel::default()
    }

    /// A day that is S1 until `fail_at` (sample index) and S3 afterwards,
    /// `len` samples long.
    fn failing_day(len: usize, fail_at: usize) -> Vec<State> {
        (0..len)
            .map(|i| if i < fail_at { S1 } else { S3 })
            .collect()
    }

    #[test]
    fn quiet_history_predicts_high_reliability() {
        let days: Vec<Vec<State>> = (0..5).map(|_| vec![S1; 1000]).collect();
        let store = store_of_days(&days);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600); // 100 steps
        let tr = p.predict(&store, DayType::Weekday, w, S1).unwrap();
        assert_eq!(tr, 1.0);
    }

    #[test]
    fn always_failing_history_predicts_low_reliability() {
        let days: Vec<Vec<State>> = (0..5).map(|_| failing_day(1000, 50)).collect();
        let store = store_of_days(&days);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        let tr = p.predict(&store, DayType::Weekday, w, S1).unwrap();
        assert!(tr < 0.01, "tr = {tr}");
    }

    #[test]
    fn mixed_history_predicts_intermediate_reliability() {
        // 3 quiet days + 2 failing days: survival should be near 3/5.
        let mut days: Vec<Vec<State>> = (0..3).map(|_| vec![S1; 1000]).collect();
        days.push(failing_day(1000, 50));
        days.push(failing_day(1000, 50));
        let store = store_of_days(&days);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        let tr = p.predict(&store, DayType::Weekday, w, S1).unwrap();
        assert!((tr - 0.6).abs() < 0.05, "tr = {tr}");
    }

    #[test]
    fn empty_history_is_an_error() {
        let store = HistoryStore::new();
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        assert!(matches!(
            p.predict(&store, DayType::Weekday, w, S1),
            Err(CoreError::EmptyHistory { .. })
        ));
    }

    #[test]
    fn weekend_history_not_used_for_weekday_prediction() {
        // Only days 5 and 6 (weekend) exist.
        let mut store = HistoryStore::new();
        store.push_day(DayLog::new(5, StateLog::new(6, vec![S1; 1000])));
        store.push_day(DayLog::new(6, StateLog::new(6, vec![S1; 1000])));
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        assert!(p.predict(&store, DayType::Weekday, w, S1).is_err());
        // The ablation variant accepts cross-type history.
        let all = SmpPredictor::new(model()).with_all_day_types();
        assert!(all.predict(&store, DayType::Weekday, w, S1).is_ok());
    }

    #[test]
    fn max_history_days_limits_statistics() {
        // 1 recent failing day only; older days quiet. With N = 1 the
        // prediction must reflect the failing day.
        let mut days: Vec<Vec<State>> = (0..4).map(|_| vec![S1; 1000]).collect();
        days.push(failing_day(1000, 50)); // day 4, most recent weekday
        let store = store_of_days(&days);
        let w = TimeWindow::new(0, 600);
        let recent_only = SmpPredictor::new(model())
            .with_max_history_days(1)
            .predict(&store, DayType::Weekday, w, S1)
            .unwrap();
        let all = SmpPredictor::new(model())
            .predict(&store, DayType::Weekday, w, S1)
            .unwrap();
        assert!(recent_only < 0.01, "recent_only = {recent_only}");
        assert!(all > 0.5, "all = {all}");
    }

    #[test]
    fn predict_rejects_failure_init() {
        let store = store_of_days(&[vec![S1; 1000]]);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        assert!(matches!(
            p.predict(&store, DayType::Weekday, w, S5),
            Err(CoreError::FailureInitialState(S5))
        ));
    }

    #[test]
    fn empirical_tr_counts_survivals() {
        let days = vec![
            vec![S1; 1000],        // survives
            failing_day(1000, 50), // fails inside window
            vec![S1; 1000],        // survives
            failing_day(1000, 0),  // failure at window start: excluded
        ];
        let store = store_of_days(&days);
        let w = TimeWindow::new(0, 600);
        let tr = empirical_tr(&store, DayType::Weekday, w).unwrap();
        assert!((tr - 2.0 / 3.0).abs() < 1e-12, "tr = {tr}");
    }

    #[test]
    fn empirical_tr_none_when_no_usable_days() {
        let store = store_of_days(&[failing_day(1000, 0)]);
        let w = TimeWindow::new(0, 600);
        assert_eq!(empirical_tr(&store, DayType::Weekday, w), None);
    }

    #[test]
    fn evaluate_window_on_stationary_machine_is_accurate() {
        // 10 train + 10 test days, failure at step 50 on 30% of days,
        // deterministically interleaved.
        let make = |fail: bool| {
            if fail {
                failing_day(1000, 50)
            } else {
                vec![S1; 1000]
            }
        };
        let mut train = HistoryStore::new();
        let mut test = HistoryStore::new();
        let pattern = [
            false, false, true, false, false, true, false, false, true, false,
        ];
        for (i, &f) in pattern.iter().enumerate() {
            // Use day indices that are all weekdays (weeks of 7, first 5).
            let day = (i / 5) * 7 + (i % 5);
            train.push_day(DayLog::new(day, StateLog::new(6, make(f))));
            test.push_day(DayLog::new(day, StateLog::new(6, make(f))));
        }
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        let eval = evaluate_window(&p, &train, &test, DayType::Weekday, w).unwrap();
        assert_eq!(eval.days_used, 10);
        assert!((eval.empirical - 0.7).abs() < 1e-12);
        let err = eval.relative_error().unwrap();
        assert!(
            err < 0.05,
            "pred {} emp {} err {err}",
            eval.predicted,
            eval.empirical
        );
    }

    #[test]
    fn relative_error_undefined_at_zero_empirical() {
        let eval = WindowEvaluation {
            predicted: 0.2,
            empirical: 0.0,
            days_used: 5,
        };
        assert_eq!(eval.relative_error(), None);
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        // Days 0-2 quiet, 3 and 4 failing inside the window (indices 0-4
        // are weekdays; 5-6 would be the weekend).
        let mut days: Vec<Vec<State>> = (0..3).map(|_| vec![S1; 1000]).collect();
        days.push(failing_day(1000, 80));
        days.push(failing_day(1000, 40));
        let store = store_of_days(&days);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        let mut rng = fgcs_runtime::rng::Xoshiro256::seed_from_u64(1);
        let pred = p
            .predict_with_ci(&store, DayType::Weekday, w, S1, 200, 0.9, &mut rng)
            .unwrap();
        assert!((0.0..=1.0).contains(&pred.tr));
        assert!(pred.ci_low <= pred.tr + 1e-9, "{pred:?}");
        assert!(pred.ci_high >= pred.tr - 1e-9, "{pred:?}");
        assert!(pred.ci_width() > 0.0, "mixed history must have uncertainty");
        assert_eq!(pred.bootstrap_samples, 200);
    }

    #[test]
    fn bootstrap_ci_degenerate_on_uniform_history() {
        let days: Vec<Vec<State>> = (0..5).map(|_| vec![S1; 1000]).collect();
        let store = store_of_days(&days);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        let mut rng = fgcs_runtime::rng::Xoshiro256::seed_from_u64(2);
        let pred = p
            .predict_with_ci(&store, DayType::Weekday, w, S1, 50, 0.95, &mut rng)
            .unwrap();
        assert_eq!(pred.tr, 1.0);
        assert_eq!(pred.ci_width(), 0.0);
    }

    #[test]
    fn bootstrap_rejects_failure_init_and_empty_history() {
        let mut rng = fgcs_runtime::rng::Xoshiro256::seed_from_u64(3);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 600);
        let empty = HistoryStore::new();
        assert!(p
            .predict_with_ci(&empty, DayType::Weekday, w, S1, 10, 0.9, &mut rng)
            .is_err());
        let store = store_of_days(&[vec![S1; 1000]]);
        assert!(p
            .predict_with_ci(&store, DayType::Weekday, w, S3, 10, 0.9, &mut rng)
            .is_err());
    }

    #[test]
    fn predict_cached_memo_is_bit_identical_to_direct_solve() {
        use crate::cache::QhCache;
        let mut days: Vec<Vec<State>> = (0..4).map(|_| vec![S1; 1000]).collect();
        days.push(failing_day(1000, 120));
        let store = store_of_days(&days);
        let w = TimeWindow::new(0, 600);
        let cache = QhCache::new(8);
        for policy in [SolverPolicy::Fast, SolverPolicy::PaperOracle] {
            let p = SmpPredictor::new(model()).with_solver_policy(policy);
            let direct = p.predict(&store, DayType::Weekday, w, S1).unwrap();
            let first = p
                .predict_cached(&cache, 1, &store, DayType::Weekday, w, S1)
                .unwrap();
            // Second call is served from the solve memo; a second *host*
            // with the same history shares the canonical kernel and hits
            // the same memo entry.
            let memoized = p
                .predict_cached(&cache, 1, &store, DayType::Weekday, w, S1)
                .unwrap();
            let other_host = p
                .predict_cached(&cache, 2, &store, DayType::Weekday, w, S1)
                .unwrap();
            assert_eq!(direct.to_bits(), first.to_bits(), "{policy:?}");
            assert_eq!(direct.to_bits(), memoized.to_bits(), "{policy:?}");
            assert_eq!(direct.to_bits(), other_host.to_bits(), "{policy:?}");
            // Different init / policy / steps use different memo slots.
            let s2 = p
                .predict_cached(&cache, 1, &store, DayType::Weekday, w, S2)
                .unwrap();
            let s2_direct = p.predict(&store, DayType::Weekday, w, S2).unwrap();
            assert_eq!(s2.to_bits(), s2_direct.to_bits(), "{policy:?}");
        }
    }

    #[test]
    fn solve_memo_keys_are_injective_over_inputs() {
        let mut seen = std::collections::HashSet::new();
        for steps in [0usize, 1, 7, 1200] {
            for policy in [SolverPolicy::Fast, SolverPolicy::PaperOracle] {
                for init in [S1, S2, S3, S4, S5] {
                    assert!(seen.insert(solve_memo_key(init, policy, steps)));
                }
            }
        }
    }

    #[test]
    fn predict_curve_is_monotone() {
        let mut days: Vec<Vec<State>> = (0..6).map(|_| vec![S1; 1000]).collect();
        days.push(failing_day(1000, 200));
        let store = store_of_days(&days);
        let p = SmpPredictor::new(model());
        let w = TimeWindow::new(0, 3000); // 500 steps
        let curve = p.predict_curve(&store, DayType::Weekday, w, S1).unwrap();
        assert_eq!(curve.len(), 501);
        for pair in curve.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
    }
}
