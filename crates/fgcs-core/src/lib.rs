#![warn(missing_docs)]
// Library code must surface errors through `CoreError`, not panic: an
// `unwrap()` on a volunteer host's data path is exactly the brittleness
// the robustness layer exists to remove. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! # fgcs-core
//!
//! The primary contribution of *Ren, Lee, Eigenmann, Bagchi: "Resource
//! Availability Prediction in Fine-Grained Cycle Sharing Systems"
//! (HPDC 2006)*:
//!
//! * a **five-state resource availability model** ([`state::State`],
//!   [`model::AvailabilityModel`]) combining unavailability due to excessive
//!   resource contention (UEC: CPU overload S3, memory thrashing S4) with
//!   unavailability due to resource revocation (URR: S5),
//! * **classification** of monitor samples into those states with
//!   transient-spike folding ([`classify::StateClassifier`]),
//! * per-day **history logs** and the store the statistics are drawn from
//!   ([`log::HistoryStore`]),
//! * a **discrete-time semi-Markov process** whose parameters (`Q`, `H`)
//!   are estimated from the corresponding windows of the most recent
//!   same-type days ([`smp::SmpParams`]), and the sparse Eq.-3 solver for
//!   the interval transition probabilities ([`smp::SparseSolver`]),
//! * the end-to-end **temporal reliability predictor** and its evaluation
//!   harness ([`predictor::SmpPredictor`], [`predictor::evaluate_window`]),
//! * **graceful degradation** for corrupted or missing history: lossy
//!   ingestion ([`log::HistoryStore::from_samples_lossy`]) and the tagged
//!   fallback chain ([`robust::RobustPredictor`]),
//! * a **sharded streaming registry** for long-running serving: hash-by-host
//!   shards, per-shard kernel caches, an append-only ingest log, and O(1)
//!   incremental Q/H updates ([`registry::ShardedRegistry`],
//!   [`smp::IncrementalEstimator`]).
//!
//! Temporal reliability `TR(W)` is the probability that a machine never
//! enters a failure state (S3/S4/S5) throughout a future time window `W` —
//! the quantity a job scheduler uses to place guest jobs on machines with
//! high expected availability.

pub mod batch;
pub mod cache;
pub mod classify;
pub mod error;
pub mod log;
pub mod model;
pub mod predictor;
pub mod registry;
pub mod robust;
pub mod smp;
pub mod state;
pub mod window;

pub use batch::{
    evaluate_cluster, predict_cluster, BatchSolver, ClusterQuery, EvalQuery, IntervalCurves,
    TrCurve,
};
pub use cache::{KernelDedup, QhCache};
pub use classify::StateClassifier;
pub use error::CoreError;
pub use log::{DayLog, HistoryStore, IngestReport, StateLog};
pub use model::{AvailabilityModel, LoadSample};
pub use predictor::{
    empirical_tr, evaluate_window, evaluate_window_markov, SmpPredictor, SolverPolicy,
    TrPrediction, WindowEvaluation,
};
pub use registry::{
    IngestAck, IngestRecord, RegistryConfig, RegistryError, RegistryStats, ShardSession,
    ShardedRegistry,
};
pub use robust::{PredictionQuality, QualifiedTr, RobustPredictor, DEFAULT_PRIOR_TR};
pub use smp::{
    CompactSolver, DenseSolver, FastSolver, IncrementalEstimator, IntervalProbs, MarkovChain,
    SmpParams, SojournAccumulator, SolveScratch, SparseSolver,
};
pub use state::State;
pub use window::{DayType, TimeWindow, SECS_PER_DAY};
