//! Time windows, day types and calendar helpers.
//!
//! The predictor computes the temporal reliability for a *future time window*
//! `W = (W_init, T)` (paper §4.2), using the corresponding windows of the most
//! recent same-type days (weekday vs weekend) as the statistics source.

use fgcs_runtime::{impl_json_enum, impl_json_struct};

/// Seconds in one day.
pub const SECS_PER_DAY: u32 = 86_400;

/// Whether a day is a weekday or weekend day. The paper computes SMP
/// parameters only from days of the same type as the prediction target,
/// because host load patterns repeat within each class (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DayType {
    /// Monday–Friday.
    Weekday,
    /// Saturday–Sunday.
    Weekend,
}

impl_json_enum!(DayType { Weekday, Weekend });

impl DayType {
    /// Day type for a zero-based day index, where day 0 is a Monday.
    #[must_use]
    pub fn of_day(day_index: usize) -> DayType {
        if day_index % 7 < 5 {
            DayType::Weekday
        } else {
            DayType::Weekend
        }
    }

    /// Both day types.
    pub const ALL: [DayType; 2] = [DayType::Weekday, DayType::Weekend];
}

impl std::fmt::Display for DayType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DayType::Weekday => write!(f, "weekday"),
            DayType::Weekend => write!(f, "weekend"),
        }
    }
}

/// A within-day time window: a start offset from midnight and a length,
/// both in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Seconds after midnight at which the window starts.
    pub start_secs: u32,
    /// Window length in seconds.
    pub len_secs: u32,
}

impl_json_struct!(TimeWindow {
    start_secs,
    len_secs
});

impl TimeWindow {
    /// Creates a window from a start offset and length in seconds.
    ///
    /// Windows may cross midnight once (the paper's Figure 5 sweeps start
    /// times up to 23:00 with lengths up to 10 hours), so the only
    /// constraints are that the start lies within the day and the window
    /// ends before the *following* midnight.
    ///
    /// # Panics
    /// Panics if the window is empty, starts outside the day, or spans more
    /// than one midnight.
    #[must_use]
    pub fn new(start_secs: u32, len_secs: u32) -> TimeWindow {
        assert!(len_secs > 0, "window must be non-empty");
        assert!(
            start_secs < SECS_PER_DAY,
            "window must start within the day"
        );
        assert!(
            start_secs + len_secs <= 2 * SECS_PER_DAY,
            "window [{start_secs}, {}) spans more than one midnight",
            start_secs as u64 + len_secs as u64
        );
        TimeWindow {
            start_secs,
            len_secs,
        }
    }

    /// `true` when the window extends past the midnight of its starting day.
    #[must_use]
    pub fn crosses_midnight(&self) -> bool {
        self.end_secs() > SECS_PER_DAY
    }

    /// Creates a window from fractional hours, e.g. `from_hours(8.0, 2.5)` is
    /// the window 08:00–10:30.
    ///
    /// # Panics
    /// Panics on negative values or windows crossing midnight.
    #[must_use]
    pub fn from_hours(start_hours: f64, len_hours: f64) -> TimeWindow {
        assert!(start_hours >= 0.0 && len_hours > 0.0);
        TimeWindow::new(
            (start_hours * 3600.0).round() as u32,
            (len_hours * 3600.0).round() as u32,
        )
    }

    /// End offset (exclusive) in seconds after midnight.
    #[must_use]
    pub fn end_secs(&self) -> u32 {
        self.start_secs + self.len_secs
    }

    /// Window length in fractional hours.
    #[must_use]
    pub fn len_hours(&self) -> f64 {
        f64::from(self.len_secs) / 3600.0
    }

    /// Number of discretisation steps `T/d` for a step of `step_secs`.
    ///
    /// # Panics
    /// Panics if `step_secs == 0`.
    #[must_use]
    pub fn steps(&self, step_secs: u32) -> usize {
        assert!(step_secs > 0);
        (self.len_secs / step_secs) as usize
    }

    /// Index of the first sample of this window in a day sampled every
    /// `step_secs` seconds.
    #[must_use]
    pub fn start_step(&self, step_secs: u32) -> usize {
        (self.start_secs / step_secs) as usize
    }
}

impl std::fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (sh, sm) = (self.start_secs / 3600, (self.start_secs % 3600) / 60);
        write!(f, "{:02}:{:02}+{:.2}h", sh, sm, self.len_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_types_follow_week_structure() {
        // Day 0 = Monday ... day 4 = Friday, 5-6 weekend.
        for d in 0..5 {
            assert_eq!(DayType::of_day(d), DayType::Weekday);
        }
        assert_eq!(DayType::of_day(5), DayType::Weekend);
        assert_eq!(DayType::of_day(6), DayType::Weekend);
        assert_eq!(DayType::of_day(7), DayType::Weekday);
        assert_eq!(DayType::of_day(13), DayType::Weekend);
    }

    #[test]
    fn from_hours_matches_seconds() {
        let w = TimeWindow::from_hours(8.0, 2.0);
        assert_eq!(w.start_secs, 8 * 3600);
        assert_eq!(w.len_secs, 2 * 3600);
        assert_eq!(w.end_secs(), 10 * 3600);
        assert!((w.len_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steps_at_paper_resolution() {
        // 10-hour window at the paper's 6-second monitoring period.
        let w = TimeWindow::from_hours(0.0, 10.0);
        assert_eq!(w.steps(6), 6000);
        assert_eq!(w.start_step(6), 0);
        let w2 = TimeWindow::from_hours(9.0, 1.0);
        assert_eq!(w2.start_step(6), 5400);
    }

    #[test]
    fn window_may_cross_one_midnight() {
        let w = TimeWindow::from_hours(23.0, 10.0);
        assert!(w.crosses_midnight());
        assert!(!TimeWindow::from_hours(8.0, 10.0).crosses_midnight());
    }

    #[test]
    #[should_panic(expected = "more than one midnight")]
    fn window_past_two_midnights_panics() {
        let _ = TimeWindow::from_hours(23.0, 26.0);
    }

    #[test]
    #[should_panic(expected = "start within the day")]
    fn window_starting_next_day_panics() {
        let _ = TimeWindow::from_hours(25.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let _ = TimeWindow::new(0, 0);
    }

    #[test]
    fn display_formats_start_time() {
        let w = TimeWindow::from_hours(8.5, 1.0);
        assert_eq!(w.to_string(), "08:30+1.00h");
    }
}
