//! Resource-contention models: the analytic stand-in for the paper's §3.2
//! empirical studies on real Linux/Unix machines.
//!
//! * [`cpu`] — a two-priority time-sharing CPU model that reproduces the
//!   host-CPU reduction-rate curves of §3.2.1 and from which the two
//!   thresholds `Th1`/`Th2` emerge,
//! * [`memory`] — a working-set/physical-memory model with thrashing
//!   (§3.2.2): CPU priority does nothing once memory is overcommitted.

pub mod cpu;
pub mod memory;

pub use cpu::{Allocation, CpuContentionModel, GuestPriority};
pub use memory::MemoryModel;
