//! Two-priority time-sharing CPU model.
//!
//! Reproduces the behaviour the paper measured empirically on a 1.7 GHz
//! Redhat Linux machine (§3.2.1): the *reduction rate of host CPU usage*
//! caused by a CPU-bound guest process, as a function of the isolated host
//! load `L_H`, the host-group size, and the guest's priority (nice 0 vs
//! nice 19).
//!
//! Two mechanisms are modelled:
//!
//! 1. **Timeslice competition** — progressive filling: each runnable
//!    process receives CPU proportionally to its scheduler weight, with
//!    under-demanding processes capped at their demand and the surplus
//!    redistributed. A nice-19 guest carries a tiny weight (Linux O(1)
//!    scheduler timeslices: 5 ms vs 100 ms), so it only steals cycles the
//!    hosts cannot use.
//! 2. **Context-switch / cache interference** — even a minimum-priority
//!    guest perturbs host caches; the induced host slowdown grows with the
//!    host's own load. This term is what makes the empirically observed
//!    thresholds exist at all: pure timeslice arithmetic would let a
//!    nice-19 guest run for free until `L_H ≈ 95 %`.
//!
//! With the default calibration the 5 %-slowdown thresholds come out at
//! `Th1 = 20 %` (guest at default priority) and `Th2 = 60 %` (guest at
//! lowest priority) — the paper's testbed values.

/// Scheduling priority of the guest process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuestPriority {
    /// nice 0 — the guest competes head-to-head with host processes.
    Default,
    /// nice 19 — the guest only gets leftover cycles (renice'd).
    Lowest,
}

/// Outcome of scheduling a host group together with one guest process.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// CPU fraction obtained by each host process.
    pub host: Vec<f64>,
    /// CPU fraction obtained by the guest process.
    pub guest: f64,
    /// Effective total host usage after interference.
    pub host_effective: f64,
}

/// The calibrated contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuContentionModel {
    /// Scheduler weight of a nice-19 process relative to nice 0.
    pub low_priority_weight: f64,
    /// Host-slowdown coefficient of a default-priority guest
    /// (slowdown ≈ coefficient × `L_H`).
    pub interference_default: f64,
    /// Host-slowdown coefficient of a lowest-priority guest.
    pub interference_low: f64,
}

impl Default for CpuContentionModel {
    fn default() -> Self {
        CpuContentionModel {
            low_priority_weight: 0.05,
            interference_default: 0.25,
            interference_low: 1.0 / 12.0,
        }
    }
}

impl CpuContentionModel {
    /// Progressive-filling proportional-share allocation: every process
    /// receives `min(demand, weighted share)`, with surpluses redistributed
    /// until stable.
    fn proportional_share(demands: &[f64], weights: &[f64]) -> Vec<f64> {
        debug_assert_eq!(demands.len(), weights.len());
        let n = demands.len();
        let mut alloc = vec![0.0; n];
        let mut active: Vec<usize> = (0..n).collect();
        let mut capacity = 1.0_f64;
        while !active.is_empty() && capacity > 1e-12 {
            let weight_sum: f64 = active.iter().map(|&i| weights[i]).sum();
            if weight_sum <= 0.0 {
                break;
            }
            // Find processes whose demand fits below their share.
            let mut satisfied = Vec::new();
            for &i in &active {
                let share = capacity * weights[i] / weight_sum;
                if demands[i] <= share + 1e-15 {
                    satisfied.push(i);
                }
            }
            if satisfied.is_empty() {
                // Everyone is capped by their share: final split.
                for &i in &active {
                    alloc[i] = capacity * weights[i] / weight_sum;
                }
                return alloc;
            }
            for &i in &satisfied {
                alloc[i] = demands[i];
                capacity -= demands[i];
            }
            active.retain(|i| !satisfied.contains(i));
        }
        alloc
    }

    /// Schedules the host group alone (no guest) — the isolated usage.
    #[must_use]
    pub fn isolated_host_usage(&self, host_demands: &[f64]) -> f64 {
        let weights = vec![1.0; host_demands.len()];
        Self::proportional_share(host_demands, &weights)
            .iter()
            .sum()
    }

    /// Schedules the host group together with one guest process.
    #[must_use]
    pub fn allocate(
        &self,
        host_demands: &[f64],
        guest_demand: f64,
        priority: GuestPriority,
    ) -> Allocation {
        let n = host_demands.len();
        let mut demands = host_demands.to_vec();
        demands.push(guest_demand);
        let mut weights = vec![1.0; n];
        weights.push(match priority {
            GuestPriority::Default => 1.0,
            GuestPriority::Lowest => self.low_priority_weight,
        });
        let alloc = Self::proportional_share(&demands, &weights);
        let host_alloc = alloc[..n].to_vec();
        let guest = alloc[n];

        // Interference: the guest's presence degrades the host's effective
        // throughput proportionally to the host's own (isolated) load and
        // to how much the guest actually runs.
        let iso = self.isolated_host_usage(host_demands);
        let coeff = match priority {
            GuestPriority::Default => self.interference_default,
            GuestPriority::Lowest => self.interference_low,
        };
        // A runnable CPU-bound guest perturbs the hosts on every scheduling
        // round regardless of how many cycles it wins (it stays on the run
        // queue), so interference scales with the guest's demand, not with
        // the share it is granted.
        let activity = guest_demand.min(1.0);
        let raw_total: f64 = host_alloc.iter().sum();
        let host_effective = (raw_total * (1.0 - coeff * iso * activity)).max(0.0);
        Allocation {
            host: host_alloc,
            guest,
            host_effective,
        }
    }

    /// The §3.2.1 measurement: relative reduction of total host CPU usage
    /// when a fully CPU-bound guest runs alongside the host group.
    #[must_use]
    pub fn host_reduction_rate(&self, host_demands: &[f64], priority: GuestPriority) -> f64 {
        let iso = self.isolated_host_usage(host_demands);
        if iso <= 0.0 {
            return 0.0;
        }
        let with_guest = self.allocate(host_demands, 1.0, priority).host_effective;
        ((iso - with_guest) / iso).max(0.0)
    }

    /// Derives the two thresholds for a single-process host group: the
    /// largest isolated host load at which the guest keeps the host
    /// slowdown within `slowdown_limit` (the paper uses 5 %) at default and
    /// at lowest priority respectively.
    ///
    /// ```
    /// let model = fgcs_sim::CpuContentionModel::default();
    /// let (th1, th2) = model.thresholds(0.05);
    /// assert!((th1 - 0.20).abs() < 0.02); // paper testbed: 20 %
    /// assert!((th2 - 0.60).abs() < 0.02); // paper testbed: 60 %
    /// ```
    #[must_use]
    pub fn thresholds(&self, slowdown_limit: f64) -> (f64, f64) {
        let solve = |priority: GuestPriority| {
            let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if self.host_reduction_rate(&[mid], priority) <= slowdown_limit {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        (solve(GuestPriority::Default), solve(GuestPriority::Lowest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuContentionModel {
        CpuContentionModel::default()
    }

    #[test]
    fn proportional_share_splits_evenly_when_saturated() {
        let alloc = CpuContentionModel::proportional_share(&[1.0, 1.0], &[1.0, 1.0]);
        assert!((alloc[0] - 0.5).abs() < 1e-12);
        assert!((alloc[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn proportional_share_caps_at_demand() {
        let alloc = CpuContentionModel::proportional_share(&[0.2, 1.0], &[1.0, 1.0]);
        assert!((alloc[0] - 0.2).abs() < 1e-12);
        assert!((alloc[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn low_priority_guest_gets_leftovers() {
        let m = model();
        let a = m.allocate(&[0.5], 1.0, GuestPriority::Lowest);
        // Host demand fits under its share; guest mops up the rest.
        assert!((a.host[0] - 0.5).abs() < 1e-9);
        assert!((a.guest - 0.5).abs() < 1e-9);
    }

    #[test]
    fn default_priority_guest_competes_hard() {
        let m = model();
        let a = m.allocate(&[0.9], 1.0, GuestPriority::Default);
        // Equal weights, both saturated: 50/50.
        assert!((a.host[0] - 0.5).abs() < 1e-9);
        assert!((a.guest - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thresholds_match_paper_testbed() {
        let (th1, th2) = model().thresholds(0.05);
        assert!((th1 - 0.20).abs() < 0.02, "Th1 = {th1}");
        assert!((th2 - 0.60).abs() < 0.02, "Th2 = {th2}");
    }

    #[test]
    fn reduction_grows_with_host_load() {
        let m = model();
        let mut prev = -1.0;
        for l in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let r = m.host_reduction_rate(&[l], GuestPriority::Lowest);
            assert!(r >= prev, "reduction not monotone at L_H = {l}");
            prev = r;
        }
    }

    #[test]
    fn renice_reduces_host_slowdown() {
        let m = model();
        for l in [0.2, 0.4, 0.6, 0.8] {
            let hi = m.host_reduction_rate(&[l], GuestPriority::Default);
            let lo = m.host_reduction_rate(&[l], GuestPriority::Lowest);
            assert!(lo < hi, "renice did not help at L_H = {l}");
        }
    }

    #[test]
    fn larger_host_groups_suffer_less_at_same_total_load() {
        // §3.2.1: the guest steals fewer cycles when more host processes
        // run — the reduction trend decreases with group size (1..=5).
        let m = model();
        let total = 0.8;
        let mut prev = f64::INFINITY;
        for size in 1..=5usize {
            let demands = vec![total / size as f64; size];
            let r = m.host_reduction_rate(&demands, GuestPriority::Default);
            assert!(
                r <= prev + 1e-9,
                "group size {size}: reduction {r} grew above {prev}"
            );
            prev = r;
        }
    }

    #[test]
    fn reduction_saturates_beyond_group_size_five() {
        let m = model();
        let total = 0.8;
        let r5 = m.host_reduction_rate(&[total / 5.0; 5], GuestPriority::Default);
        let r8 = m.host_reduction_rate(&[total / 8.0; 8], GuestPriority::Default);
        assert!((r5 - r8).abs() < 0.03, "r5 {r5} vs r8 {r8}");
    }

    #[test]
    fn idle_host_sees_no_reduction() {
        let m = model();
        assert_eq!(m.host_reduction_rate(&[0.0], GuestPriority::Default), 0.0);
        assert_eq!(m.host_reduction_rate(&[], GuestPriority::Default), 0.0);
    }

    #[test]
    fn guest_zero_demand_changes_nothing() {
        let m = model();
        let a = m.allocate(&[0.5], 0.0, GuestPriority::Default);
        assert_eq!(a.guest, 0.0);
        assert!((a.host_effective - 0.5).abs() < 1e-9);
    }
}
