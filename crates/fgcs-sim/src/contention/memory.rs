//! Working-set memory model with thrashing (§3.2.2).
//!
//! The paper's second empirical observation: "memory thrashing happens when
//! the total working set size of the guest and host processes (including
//! kernel memory usage) exceeds the physical memory size of the machine.
//! Changing CPU priority does little to prevent thrashing." — so memory
//! contention is modelled independently of CPU priority, and the two are
//! never combined (the additional effect of the second resource is
//! negligible once the first is already contended).

/// Physical-memory model of one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Physical memory in MB.
    pub physical_mb: f64,
    /// Kernel / OS resident memory in MB.
    pub kernel_mb: f64,
    /// Throughput multiplier once the machine thrashes (heavily < 1).
    pub thrash_throughput: f64,
}

impl MemoryModel {
    /// A model sized like the paper's Unix test machine (384 MB physical).
    #[must_use]
    pub fn paper_unix() -> MemoryModel {
        MemoryModel {
            physical_mb: 384.0,
            kernel_mb: 48.0,
            thrash_throughput: 0.08,
        }
    }

    /// Creates a model with the given physical size and an 8 % kernel share.
    #[must_use]
    pub fn with_physical(physical_mb: f64) -> MemoryModel {
        MemoryModel {
            physical_mb,
            kernel_mb: physical_mb * 0.08,
            thrash_throughput: 0.08,
        }
    }

    /// Free memory available to applications given the hosts' working sets.
    #[must_use]
    pub fn free_mb(&self, host_ws_mb: f64) -> f64 {
        (self.physical_mb - self.kernel_mb - host_ws_mb).max(0.0)
    }

    /// Whether a guest with the given working set fits without thrashing.
    #[must_use]
    pub fn guest_fits(&self, host_ws_mb: f64, guest_ws_mb: f64) -> bool {
        guest_ws_mb <= self.free_mb(host_ws_mb)
    }

    /// Throughput multiplier for the whole machine given the total working
    /// set: 1.0 while everything fits, dropping towards
    /// [`MemoryModel::thrash_throughput`] as the overcommit ratio grows.
    #[must_use]
    pub fn throughput_factor(&self, total_ws_mb: f64) -> f64 {
        let available = self.physical_mb - self.kernel_mb;
        if total_ws_mb <= available || available <= 0.0 {
            return 1.0;
        }
        // Linear collapse over the first 25 % of overcommit, then floor.
        let over = total_ws_mb / available - 1.0;
        let t = (over / 0.25).min(1.0);
        1.0 + t * (self.thrash_throughput - 1.0)
    }

    /// The §3.2.2 observation in executable form: does renicing the guest
    /// (i.e. any CPU-priority change) resolve the contention? Only when the
    /// memory fits — priority is irrelevant under thrashing.
    #[must_use]
    pub fn priority_can_help(&self, host_ws_mb: f64, guest_ws_mb: f64) -> bool {
        self.guest_fits(host_ws_mb, guest_ws_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_fits_when_memory_free() {
        let m = MemoryModel::paper_unix();
        assert!(m.guest_fits(100.0, 100.0)); // 48 + 200 < 384
        assert!(!m.guest_fits(250.0, 100.0)); // 48 + 350 > 336 free
    }

    #[test]
    fn free_never_negative() {
        let m = MemoryModel::paper_unix();
        assert_eq!(m.free_mb(1000.0), 0.0);
    }

    #[test]
    fn throughput_is_full_until_overcommit() {
        let m = MemoryModel::paper_unix();
        assert_eq!(m.throughput_factor(300.0), 1.0);
        assert_eq!(m.throughput_factor(336.0), 1.0);
    }

    #[test]
    fn throughput_collapses_under_thrashing() {
        let m = MemoryModel::paper_unix();
        let f = m.throughput_factor(336.0 * 1.3);
        assert!((f - m.thrash_throughput).abs() < 1e-9, "factor {f}");
        // Intermediate overcommit: partial collapse, monotone.
        let f1 = m.throughput_factor(336.0 * 1.05);
        let f2 = m.throughput_factor(336.0 * 1.15);
        assert!(f1 > f2, "{f1} vs {f2}");
        assert!(f1 < 1.0);
    }

    #[test]
    fn priority_cannot_fix_thrashing() {
        let m = MemoryModel::paper_unix();
        assert!(m.priority_can_help(100.0, 100.0));
        assert!(!m.priority_can_help(300.0, 100.0));
    }

    #[test]
    fn with_physical_scales_kernel() {
        let m = MemoryModel::with_physical(512.0);
        assert!((m.kernel_mb - 40.96).abs() < 1e-9);
        assert!(m.guest_fits(200.0, 100.0));
    }
}
