#![warn(missing_docs)]
//! # fgcs-sim
//!
//! A discrete-event simulation of an iShare-style fine-grained cycle
//! sharing system (paper §5, Figure 2) — the substitute for the authors'
//! unreleased production system:
//!
//! * [`contention`] — the analytic CPU/memory contention models that stand
//!   in for the §3.2 empirical studies (and from which `Th1`/`Th2` emerge),
//! * [`monitor`] — the non-intrusive Resource Monitor with heartbeat-gap
//!   URR detection (§5.2),
//! * [`state_manager`] — online state classification, history logging and
//!   the prediction endpoint,
//! * [`gateway`] — the guest control ladder: renice → suspend → resume /
//!   terminate,
//! * [`guest`] — CPU-bound guest jobs with optional checkpointing, and
//!   [`checkpoint`] — failure-aware (prediction-driven) checkpoint policies,
//! * [`node`] / [`cluster`] — one host node replaying a trace, and a fleet
//!   of them running a workload,
//! * [`scheduler`] — the client-side Job Scheduler with the proactive
//!   (max-reliability) policy and prediction-oblivious baselines,
//! * [`event`] — a deterministic event queue for workload construction,
//! * [`chaos`] — seeded fault-injection campaigns asserting the
//!   robustness invariants (no panics, in-range TRs, deterministic
//!   reports, zero-fault ≡ unfaulted).

pub mod chaos;
pub mod checkpoint;
pub mod cluster;
pub mod contention;
pub mod directory;
pub mod event;
pub mod gateway;
pub mod guest;
pub mod migration;
pub mod monitor;
pub mod node;
pub mod scheduler;
pub mod state_manager;

pub use chaos::{run_campaign, ChaosConfig, ChaosReport};
pub use checkpoint::{youngs_interval, CheckpointPolicy};
pub use cluster::{group_records, Cluster, GroupRecord, JobRecord, JobSpec};
pub use contention::{CpuContentionModel, GuestPriority, MemoryModel};
pub use directory::{advertise, ResourceAd, ResourceDirectory};
pub use event::EventQueue;
pub use gateway::{Gateway, GuestAction};
pub use guest::{CheckpointConfig, GuestJob, GuestOutcome, GuestStatus};
pub use migration::MigrationPolicy;
pub use monitor::{MonitorReport, ResourceMonitor};
pub use node::{GuestRecord, HostNode, QueryError};
pub use scheduler::{predict_cluster, predict_cluster_qualified, JobScheduler, SchedulingPolicy};
pub use state_manager::{OnlineDecision, StateManager};
