//! A host node: trace replay + State Manager + Gateway + (at most) one
//! guest process, wired together exactly as in the paper's Figure 2.

use fgcs_core::model::AvailabilityModel;
use fgcs_core::state::State;
use fgcs_trace::MachineTrace;

use crate::contention::CpuContentionModel;
use crate::gateway::{action_priority, Gateway, GuestAction};
use crate::guest::{GuestJob, GuestOutcome, GuestStatus};
use crate::state_manager::StateManager;

/// A finished guest run on this node.
#[derive(Debug, Clone, PartialEq)]
pub struct GuestRecord {
    /// The job as it left the node (progress reflects checkpoints).
    pub job: GuestJob,
    /// How the run ended.
    pub outcome: GuestOutcome,
    /// Tick at which the job was launched on this node.
    pub launched_at: u64,
}

/// One simulated FGCS host node.
#[derive(Debug, Clone)]
pub struct HostNode {
    /// Node identifier (the trace's machine id).
    pub id: u64,
    trace: MachineTrace,
    manager: StateManager,
    gateway: Gateway,
    cpu_model: CpuContentionModel,
    guest: Option<(GuestJob, GuestStatus, u64)>,
    cursor: usize,
    records: Vec<GuestRecord>,
}

impl HostNode {
    /// Creates a node replaying `trace` under `model`.
    #[must_use]
    pub fn new(trace: MachineTrace, model: AvailabilityModel) -> HostNode {
        let manager = StateManager::new(model, trace.first_day_index);
        HostNode {
            id: trace.machine_id,
            trace,
            manager,
            gateway: Gateway::default(),
            cpu_model: CpuContentionModel::default(),
            guest: None,
            cursor: 0,
            records: Vec::new(),
        }
    }

    /// Replays the first `days` of the trace into the history store without
    /// accepting guests — the training phase of the experiments.
    pub fn warm_up(&mut self, days: usize) {
        let until = (days * self.trace.samples_per_day()).min(self.trace.samples.len());
        while self.cursor < until {
            self.step();
        }
    }

    /// Current tick (sample index into the trace).
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.cursor as u64
    }

    /// Total ticks available in the trace.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.trace.samples.len() as u64
    }

    /// The monitoring period in seconds.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.trace.step_secs
    }

    /// The node's accumulated history (for schedulers and experiments).
    #[must_use]
    pub fn history(&self) -> &fgcs_core::log::HistoryStore {
        self.manager.history()
    }

    /// Whether a guest is currently assigned (running or suspended).
    #[must_use]
    pub fn busy(&self) -> bool {
        self.guest.is_some()
    }

    /// The host load of the sample about to be replayed (what a scheduler
    /// could observe by probing the node now).
    #[must_use]
    pub fn current_host_load(&self) -> Option<f64> {
        self.trace.samples.get(self.cursor).map(|s| s.host_cpu)
    }

    /// Whether the machine is alive at the current cursor.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.trace
            .samples
            .get(self.cursor)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// Predicted temporal reliability over the next `horizon_secs` from the
    /// node's own history (§5.1: the gateway answers the client's query).
    pub fn predict_tr(&self, horizon_secs: u32) -> Result<f64, fgcs_core::error::CoreError> {
        self.manager.predict_tr(horizon_secs)
    }

    /// Whether the node can accept a guest right now: not busy, alive, and
    /// not currently observed in a failure state.
    #[must_use]
    pub fn available(&self) -> bool {
        !self.busy()
            && self.alive()
            && !self.manager.currently_failed()
            && self.cursor < self.trace.samples.len()
    }

    /// Launches a guest job. Returns the job back when the node is busy,
    /// dead, currently failed, or out of trace.
    pub fn submit(&mut self, job: GuestJob) -> Result<(), GuestJob> {
        if !self.available() {
            return Err(job);
        }
        fgcs_runtime::counter_add!("sim.guest.submitted", 1);
        self.gateway.reset();
        self.guest = Some((
            job,
            GuestStatus::Running(crate::contention::GuestPriority::Default),
            self.cursor as u64,
        ));
        Ok(())
    }

    /// Advances one monitoring period. Returns `false` when the trace is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        let Some(&sample) = self.trace.samples.get(self.cursor) else {
            return false;
        };
        self.cursor += 1;
        let truth = if sample.alive { Some(sample) } else { None };
        let decision = self.manager.observe(truth);

        if let Some((mut job, _status, launched_at)) = self.guest.take() {
            let action = self.gateway.step(decision);
            match action {
                GuestAction::Kill(reason) => {
                    // UEC kills are resource-contention evictions (S3 CPU,
                    // S4 memory); URR kills are ownership revocations (S5).
                    fgcs_runtime::counter_add!(
                        match reason {
                            State::S3 => "sim.guest.kills_uec_cpu",
                            State::S4 => "sim.guest.kills_uec_mem",
                            _ => "sim.guest.kills_urr",
                        },
                        1
                    );
                    job.rollback();
                    self.records.push(GuestRecord {
                        job,
                        outcome: GuestOutcome::Killed {
                            at_tick: self.cursor as u64 - 1,
                            reason,
                        },
                        launched_at,
                    });
                }
                GuestAction::Suspend => {
                    fgcs_runtime::counter_add!("sim.guest.suspended_steps", 1);
                    self.guest = Some((job, GuestStatus::Suspended, launched_at));
                }
                running => {
                    let priority =
                        action_priority(running).expect("running action always maps to a priority");
                    let alloc = self
                        .cpu_model
                        .allocate(&[sample.host_cpu], 1.0, priority)
                        .guest;
                    let done = job.advance(alloc, f64::from(self.trace.step_secs));
                    if done {
                        fgcs_runtime::counter_add!("sim.guest.completed", 1);
                        self.records.push(GuestRecord {
                            job,
                            outcome: GuestOutcome::Completed {
                                at_tick: self.cursor as u64,
                            },
                            launched_at,
                        });
                    } else {
                        self.guest = Some((job, GuestStatus::Running(priority), launched_at));
                    }
                }
            }
        }

        // Day boundary bookkeeping is handled inside the manager (it closes
        // a day automatically after samples_per_day observations).
        self.cursor < self.trace.samples.len() || self.finish_trailing_day()
    }

    fn finish_trailing_day(&mut self) -> bool {
        self.manager.end_day();
        false
    }

    /// Recalls (migrates away) the current guest: an out-of-band checkpoint
    /// is taken and the job is returned for re-placement. Returns `None`
    /// when no guest is assigned.
    pub fn recall_guest(&mut self) -> Option<GuestJob> {
        self.guest.take().map(|(mut job, _status, _launched)| {
            job.force_checkpoint();
            job
        })
    }

    /// Remaining work of the currently assigned guest, if any.
    #[must_use]
    pub fn guest_remaining_secs(&self) -> Option<f64> {
        self.guest.as_ref().map(|(job, _, _)| job.remaining_secs())
    }

    /// Drains the finished-guest records.
    pub fn take_records(&mut self) -> Vec<GuestRecord> {
        std::mem::take(&mut self.records)
    }

    /// The manager's last observed operational state.
    #[must_use]
    pub fn last_operational(&self) -> State {
        self.manager.last_operational()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::LoadSample;

    fn quiet_trace(days: usize) -> MachineTrace {
        let model = AvailabilityModel::default();
        MachineTrace {
            machine_id: 7,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples: vec![LoadSample::idle(400.0); days * model.samples_per_day()],
        }
    }

    #[test]
    fn quiet_node_completes_guest_at_full_speed() {
        let mut node = HostNode::new(quiet_trace(1), AvailabilityModel::default());
        let job = GuestJob::new(1, 600.0, 50.0); // 10 minutes of work
        node.submit(job).unwrap();
        for _ in 0..200 {
            node.step();
        }
        let records = node.take_records();
        assert_eq!(records.len(), 1);
        match records[0].outcome {
            GuestOutcome::Completed { at_tick } => {
                // 600 s of work at ~full speed = ~100 ticks.
                assert!(at_tick <= 105, "completed at {at_tick}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn busy_node_rejects_second_guest() {
        let mut node = HostNode::new(quiet_trace(1), AvailabilityModel::default());
        node.submit(GuestJob::new(1, 1e6, 50.0)).unwrap();
        assert!(node.submit(GuestJob::new(2, 10.0, 50.0)).is_err());
    }

    #[test]
    fn overloaded_node_kills_guest() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        // Steady overload from tick 10 on.
        for s in &mut trace.samples[10..200] {
            s.host_cpu = 0.95;
        }
        let mut node = HostNode::new(trace, model);
        node.submit(GuestJob::new(1, 1e6, 50.0)).unwrap();
        for _ in 0..300 {
            node.step();
        }
        let records = node.take_records();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].outcome,
            GuestOutcome::Killed {
                reason: State::S3,
                ..
            }
        ));
        assert!(!node.busy());
    }

    #[test]
    fn transient_spike_only_suspends() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        for s in &mut trace.samples[10..14] {
            s.host_cpu = 0.95; // 4 ticks < 10-tick tolerance
        }
        let mut node = HostNode::new(trace, model);
        node.submit(GuestJob::new(1, 1e9, 50.0)).unwrap();
        for _ in 0..100 {
            node.step();
        }
        assert!(node.busy(), "guest should have survived the spike");
        assert!(node.take_records().is_empty());
    }

    #[test]
    fn revocation_kills_guest() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        for s in &mut trace.samples[20..100] {
            *s = LoadSample::revoked();
        }
        let mut node = HostNode::new(trace, model);
        node.submit(GuestJob::new(1, 1e9, 50.0)).unwrap();
        for _ in 0..120 {
            node.step();
        }
        let records = node.take_records();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].outcome,
            GuestOutcome::Killed {
                reason: State::S5,
                ..
            }
        ));
    }

    #[test]
    fn dead_node_rejects_submission() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        trace.samples[0] = LoadSample::revoked();
        let mut node = HostNode::new(trace, model);
        assert!(node.submit(GuestJob::new(1, 10.0, 50.0)).is_err());
    }

    #[test]
    fn warm_up_builds_history_and_allows_prediction() {
        // Warm a full week so the current day (Monday) has weekday history.
        let mut node = HostNode::new(quiet_trace(8), AvailabilityModel::default());
        node.warm_up(7);
        assert_eq!(node.history().len(), 7);
        let tr = node.predict_tr(3600).unwrap();
        assert_eq!(tr, 1.0);
    }

    #[test]
    fn trace_end_reported() {
        let mut node = HostNode::new(quiet_trace(1), AvailabilityModel::default());
        let per_day = 14_400;
        for i in 0..per_day {
            let more = node.step();
            if i + 1 < per_day {
                assert!(more);
            } else {
                assert!(!more);
            }
        }
        assert!(!node.step());
        // The trailing day was finalised exactly once.
        assert_eq!(node.history().len(), 1);
    }
}
