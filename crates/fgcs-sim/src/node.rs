//! A host node: trace replay + State Manager + Gateway + (at most) one
//! guest process, wired together exactly as in the paper's Figure 2.
//!
//! The node is also the *live* fault-injection boundary: an attached
//! [`FaultInjector`] corrupts what the State Manager observes (the
//! monitoring stream) without touching physical reality (the trace sample
//! that drives CPU contention). A node with a zero-rate plan behaves
//! bit-for-bit like a node with no injector at all.

use fgcs_core::model::{AvailabilityModel, LoadSample};
use fgcs_core::robust::QualifiedTr;
use fgcs_core::state::State;
use fgcs_runtime::fault::{FaultInjector, FaultPlan, ValueFault};
use fgcs_trace::MachineTrace;

use crate::contention::CpuContentionModel;
use crate::gateway::{action_priority, Gateway, GuestAction};
use crate::guest::{GuestJob, GuestOutcome, GuestStatus};
use crate::state_manager::StateManager;

/// Why a gateway query produced no answer. With the robust prediction
/// path a *reachable* node always answers (degrading down to the prior),
/// so the only remaining failure mode is not reaching the node at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The node is unreachable: a monitoring/communication blackout. No
    /// query can be answered until connectivity returns.
    Blackout,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Blackout => f.write_str("node unreachable: monitoring blackout"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A finished guest run on this node.
#[derive(Debug, Clone, PartialEq)]
pub struct GuestRecord {
    /// The job as it left the node (progress reflects checkpoints).
    pub job: GuestJob,
    /// How the run ended.
    pub outcome: GuestOutcome,
    /// Tick at which the job was launched on this node.
    pub launched_at: u64,
}

/// One simulated FGCS host node.
#[derive(Debug, Clone)]
pub struct HostNode {
    /// Node identifier (the trace's machine id).
    pub id: u64,
    trace: MachineTrace,
    manager: StateManager,
    gateway: Gateway,
    cpu_model: CpuContentionModel,
    guest: Option<(GuestJob, GuestStatus, u64)>,
    cursor: usize,
    records: Vec<GuestRecord>,
    faults: Option<FaultInjector>,
    /// Last sane reading the monitor produced — the hold-last substitute
    /// for corrupted observations.
    held_sample: LoadSample,
}

impl HostNode {
    /// Creates a node replaying `trace` under `model`.
    #[must_use]
    pub fn new(trace: MachineTrace, model: AvailabilityModel) -> HostNode {
        let manager = StateManager::new(model, trace.first_day_index);
        let held_sample = LoadSample::idle(trace.physical_mem_mb);
        HostNode {
            id: trace.machine_id,
            trace,
            manager,
            gateway: Gateway::default(),
            cpu_model: CpuContentionModel::default(),
            guest: None,
            cursor: 0,
            records: Vec::new(),
            faults: None,
            held_sample,
        }
    }

    /// Selects the Eq.-3 solver the node's prediction endpoints run:
    /// the default error-bounded fast path, or the verbatim paper-order
    /// oracle for audits. Scheduling decisions are identical either way.
    #[must_use]
    pub fn with_solver_policy(mut self, policy: fgcs_core::predictor::SolverPolicy) -> HostNode {
        self.manager = self.manager.with_solver_policy(policy);
        self
    }

    /// Attaches a fault injector: from now on every observation the State
    /// Manager receives passes through the plan's corruption boundary
    /// (value faults, drops, duplicates, stuck readings, outages) and the
    /// node suffers the plan's communication blackouts. The fault stream
    /// is the node id, so a cluster of nodes under one plan decorrelates.
    #[must_use]
    pub fn with_fault_injector(mut self, plan: FaultPlan) -> HostNode {
        self.faults = Some(FaultInjector::new(plan));
        self
    }

    /// Replays the first `days` of the trace into the history store without
    /// accepting guests — the training phase of the experiments.
    pub fn warm_up(&mut self, days: usize) {
        let until = (days * self.trace.samples_per_day()).min(self.trace.samples.len());
        while self.cursor < until {
            self.step();
        }
    }

    /// Current tick (sample index into the trace).
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.cursor as u64
    }

    /// Total ticks available in the trace.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.trace.samples.len() as u64
    }

    /// The monitoring period in seconds.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.trace.step_secs
    }

    /// The node's accumulated history (for schedulers and experiments).
    #[must_use]
    pub fn history(&self) -> &fgcs_core::log::HistoryStore {
        self.manager.history()
    }

    /// Whether a guest is currently assigned (running or suspended).
    #[must_use]
    pub fn busy(&self) -> bool {
        self.guest.is_some()
    }

    /// The host load of the sample about to be replayed (what a scheduler
    /// could observe by probing the node now). `None` while the node is
    /// unreachable; a non-finite reading is treated as no reading at all
    /// and an out-of-range one is clamped, so callers can compare loads
    /// without defending against NaN.
    #[must_use]
    pub fn current_host_load(&self) -> Option<f64> {
        if self.blacked_out() {
            return None;
        }
        self.trace
            .samples
            .get(self.cursor)
            .map(|s| s.host_cpu)
            .filter(|l| l.is_finite())
            .map(|l| l.clamp(0.0, 1.0))
    }

    /// Whether the node is currently unreachable because its fault plan
    /// has it in a communication blackout. Queries and submissions fail
    /// while this holds; the node itself keeps running.
    #[must_use]
    pub fn blacked_out(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|inj| inj.in_blackout(self.id, self.cursor as u64))
    }

    /// Whether the machine is alive at the current cursor.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.trace
            .samples
            .get(self.cursor)
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// Predicted temporal reliability over the next `horizon_secs` from the
    /// node's own history (§5.1: the gateway answers the client's query).
    pub fn predict_tr(&self, horizon_secs: u32) -> Result<f64, fgcs_core::error::CoreError> {
        self.manager.predict_tr(horizon_secs)
    }

    /// Predicted temporal reliability through the graceful-degradation
    /// chain: a reachable node always answers, tagging the answer with the
    /// [`fgcs_core::robust::PredictionQuality`] of the path that produced
    /// it. Fails only while the node is [`HostNode::blacked_out`].
    pub fn predict_tr_qualified(&self, horizon_secs: u32) -> Result<QualifiedTr, QueryError> {
        if self.blacked_out() {
            fgcs_runtime::counter_add!("sim.node.blackout_rejections", 1);
            return Err(QueryError::Blackout);
        }
        Ok(self.manager.predict_tr_qualified(horizon_secs))
    }

    /// Whether the node can accept a guest right now: not busy, alive, and
    /// not currently observed in a failure state.
    #[must_use]
    pub fn available(&self) -> bool {
        !self.busy()
            && self.alive()
            && !self.manager.currently_failed()
            && self.cursor < self.trace.samples.len()
    }

    /// Launches a guest job. Returns the job back when the node is busy,
    /// dead, currently failed, unreachable, or out of trace.
    pub fn submit(&mut self, job: GuestJob) -> Result<(), GuestJob> {
        if !self.available() || self.blacked_out() {
            return Err(job);
        }
        fgcs_runtime::counter_add!("sim.guest.submitted", 1);
        self.gateway.reset();
        self.guest = Some((
            job,
            GuestStatus::Running(crate::contention::GuestPriority::Default),
            self.cursor as u64,
        ));
        Ok(())
    }

    /// Advances one monitoring period. Returns `false` when the trace is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        let Some(&sample) = self.trace.samples.get(self.cursor) else {
            return false;
        };
        let idx = self.cursor as u64;
        self.cursor += 1;
        let truth = self.observe_through_faults(sample, idx);
        let decision = self.manager.observe(truth);

        if let Some((mut job, _status, launched_at)) = self.guest.take() {
            let action = self.gateway.step(decision);
            match action {
                GuestAction::Kill(reason) => {
                    // UEC kills are resource-contention evictions (S3 CPU,
                    // S4 memory); URR kills are ownership revocations (S5).
                    fgcs_runtime::counter_add!(
                        match reason {
                            State::S3 => "sim.guest.kills_uec_cpu",
                            State::S4 => "sim.guest.kills_uec_mem",
                            _ => "sim.guest.kills_urr",
                        },
                        1
                    );
                    job.rollback();
                    self.records.push(GuestRecord {
                        job,
                        outcome: GuestOutcome::Killed {
                            at_tick: self.cursor as u64 - 1,
                            reason,
                        },
                        launched_at,
                    });
                }
                GuestAction::Suspend => {
                    fgcs_runtime::counter_add!("sim.guest.suspended_steps", 1);
                    self.guest = Some((job, GuestStatus::Suspended, launched_at));
                }
                running => {
                    let priority =
                        action_priority(running).expect("running action always maps to a priority");
                    let alloc = self
                        .cpu_model
                        .allocate(&[sample.host_cpu], 1.0, priority)
                        .guest;
                    let done = job.advance(alloc, f64::from(self.trace.step_secs));
                    if done {
                        fgcs_runtime::counter_add!("sim.guest.completed", 1);
                        self.records.push(GuestRecord {
                            job,
                            outcome: GuestOutcome::Completed {
                                at_tick: self.cursor as u64,
                            },
                            launched_at,
                        });
                    } else {
                        self.guest = Some((job, GuestStatus::Running(priority), launched_at));
                    }
                }
            }
        }

        // Day boundary bookkeeping is handled inside the manager (it closes
        // a day automatically after samples_per_day observations).
        self.cursor < self.trace.samples.len() || self.finish_trailing_day()
    }

    /// The fault-injection boundary between the physical machine and its
    /// monitor: what the State Manager receives is the trace sample
    /// filtered through the node's injector. Physical reality (`sample`)
    /// still drives guest CPU contention — faults corrupt *observation*,
    /// not the machine. With no injector (or a zero-rate plan) the result
    /// is bit-identical to the plain `alive → Some(sample)` path.
    fn observe_through_faults(&mut self, sample: LoadSample, idx: u64) -> Option<LoadSample> {
        let Some(injector) = &self.faults else {
            return if sample.alive { Some(sample) } else { None };
        };
        if injector.in_blackout(self.id, idx) {
            fgcs_runtime::counter_add!("runtime.fault.blackout_steps", 1);
        }
        if injector.in_outage(self.id, idx) || injector.dropped(self.id, idx) {
            // The monitor produced nothing this period. Sustained gaps are
            // indistinguishable from revocation, exactly as in a real
            // deployment with a dead monitor daemon.
            return None;
        }
        let mut s = sample;
        if injector.stuck_at(self.id, idx) || injector.duplicated(self.id, idx) {
            // A stuck or repeated reading: the previous values under the
            // current heartbeat.
            s = LoadSample {
                alive: sample.alive,
                ..self.held_sample
            };
        } else if let Some(fault) = injector.value_fault(self.id, idx) {
            corrupt_observation(&mut s, fault);
        }
        if !s.is_sane() {
            // Live hold-last repair, preserving the heartbeat so
            // revocation detection keeps working on repaired samples.
            fgcs_runtime::counter_add!("sim.monitor.insane_repaired", 1);
            s = LoadSample {
                alive: s.alive,
                ..self.held_sample
            };
        }
        self.held_sample = s;
        if s.alive {
            Some(s)
        } else {
            None
        }
    }

    fn finish_trailing_day(&mut self) -> bool {
        self.manager.end_day();
        false
    }

    /// Recalls (migrates away) the current guest: an out-of-band checkpoint
    /// is taken and the job is returned for re-placement. Returns `None`
    /// when no guest is assigned.
    pub fn recall_guest(&mut self) -> Option<GuestJob> {
        self.guest.take().map(|(mut job, _status, _launched)| {
            job.force_checkpoint();
            job
        })
    }

    /// Remaining work of the currently assigned guest, if any.
    #[must_use]
    pub fn guest_remaining_secs(&self) -> Option<f64> {
        self.guest.as_ref().map(|(job, _, _)| job.remaining_secs())
    }

    /// Drains the finished-guest records.
    pub fn take_records(&mut self) -> Vec<GuestRecord> {
        std::mem::take(&mut self.records)
    }

    /// The manager's last observed operational state.
    #[must_use]
    pub fn last_operational(&self) -> State {
        self.manager.last_operational()
    }
}

/// Applies one value fault to an observed sample, leaving the heartbeat
/// intact (value corruption and machine death are independent failures).
fn corrupt_observation(sample: &mut LoadSample, fault: ValueFault) {
    match fault {
        ValueFault::Nan => {
            sample.host_cpu = f64::NAN;
            sample.free_mem_mb = f64::NAN;
        }
        ValueFault::PosInf => {
            sample.host_cpu = f64::INFINITY;
            sample.free_mem_mb = f64::INFINITY;
        }
        ValueFault::NegInf => {
            sample.host_cpu = f64::NEG_INFINITY;
            sample.free_mem_mb = f64::NEG_INFINITY;
        }
        ValueFault::OutOfRange => {
            sample.host_cpu = 17.5;
            sample.free_mem_mb = -4096.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::LoadSample;

    fn quiet_trace(days: usize) -> MachineTrace {
        let model = AvailabilityModel::default();
        MachineTrace {
            machine_id: 7,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples: vec![LoadSample::idle(400.0); days * model.samples_per_day()],
        }
    }

    #[test]
    fn quiet_node_completes_guest_at_full_speed() {
        let mut node = HostNode::new(quiet_trace(1), AvailabilityModel::default());
        let job = GuestJob::new(1, 600.0, 50.0); // 10 minutes of work
        node.submit(job).unwrap();
        for _ in 0..200 {
            node.step();
        }
        let records = node.take_records();
        assert_eq!(records.len(), 1);
        match records[0].outcome {
            GuestOutcome::Completed { at_tick } => {
                // 600 s of work at ~full speed = ~100 ticks.
                assert!(at_tick <= 105, "completed at {at_tick}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn busy_node_rejects_second_guest() {
        let mut node = HostNode::new(quiet_trace(1), AvailabilityModel::default());
        node.submit(GuestJob::new(1, 1e6, 50.0)).unwrap();
        assert!(node.submit(GuestJob::new(2, 10.0, 50.0)).is_err());
    }

    #[test]
    fn overloaded_node_kills_guest() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        // Steady overload from tick 10 on.
        for s in &mut trace.samples[10..200] {
            s.host_cpu = 0.95;
        }
        let mut node = HostNode::new(trace, model);
        node.submit(GuestJob::new(1, 1e6, 50.0)).unwrap();
        for _ in 0..300 {
            node.step();
        }
        let records = node.take_records();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].outcome,
            GuestOutcome::Killed {
                reason: State::S3,
                ..
            }
        ));
        assert!(!node.busy());
    }

    #[test]
    fn transient_spike_only_suspends() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        for s in &mut trace.samples[10..14] {
            s.host_cpu = 0.95; // 4 ticks < 10-tick tolerance
        }
        let mut node = HostNode::new(trace, model);
        node.submit(GuestJob::new(1, 1e9, 50.0)).unwrap();
        for _ in 0..100 {
            node.step();
        }
        assert!(node.busy(), "guest should have survived the spike");
        assert!(node.take_records().is_empty());
    }

    #[test]
    fn revocation_kills_guest() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        for s in &mut trace.samples[20..100] {
            *s = LoadSample::revoked();
        }
        let mut node = HostNode::new(trace, model);
        node.submit(GuestJob::new(1, 1e9, 50.0)).unwrap();
        for _ in 0..120 {
            node.step();
        }
        let records = node.take_records();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].outcome,
            GuestOutcome::Killed {
                reason: State::S5,
                ..
            }
        ));
    }

    #[test]
    fn dead_node_rejects_submission() {
        let model = AvailabilityModel::default();
        let mut trace = quiet_trace(1);
        trace.samples[0] = LoadSample::revoked();
        let mut node = HostNode::new(trace, model);
        assert!(node.submit(GuestJob::new(1, 10.0, 50.0)).is_err());
    }

    #[test]
    fn warm_up_builds_history_and_allows_prediction() {
        // Warm a full week so the current day (Monday) has weekday history.
        let mut node = HostNode::new(quiet_trace(8), AvailabilityModel::default());
        node.warm_up(7);
        assert_eq!(node.history().len(), 7);
        let tr = node.predict_tr(3600).unwrap();
        assert_eq!(tr, 1.0);
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_unfaulted() {
        use fgcs_runtime::fault::FaultPlan;
        let trace = quiet_trace(8);
        let mut plain = HostNode::new(trace.clone(), AvailabilityModel::default());
        let mut zeroed = HostNode::new(trace, AvailabilityModel::default())
            .with_fault_injector(FaultPlan::none(99));
        plain.warm_up(7);
        zeroed.warm_up(7);
        assert_eq!(plain.history(), zeroed.history());
        let a = plain.predict_tr(3600).unwrap();
        let b = zeroed.predict_tr(3600).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let qa = plain.predict_tr_qualified(3600).unwrap();
        let qb = zeroed.predict_tr_qualified(3600).unwrap();
        assert_eq!(qa.tr.to_bits(), qb.tr.to_bits());
        assert_eq!(qa.quality, qb.quality);
    }

    #[test]
    fn chaotic_observations_are_absorbed_without_panic() {
        use fgcs_runtime::fault::FaultPlan;
        // Aggressive corruption of every kind on a quiet machine: the node
        // must keep stepping, keep logging days, and keep answering
        // qualified queries with in-range TRs.
        let plan = FaultPlan {
            nan_rate: 0.05,
            inf_rate: 0.02,
            out_of_range_rate: 0.05,
            ..FaultPlan::chaos(3)
        };
        let mut node =
            HostNode::new(quiet_trace(8), AvailabilityModel::default()).with_fault_injector(plan);
        node.warm_up(7);
        assert!(!node.history().is_empty());
        let q = node.predict_tr_qualified(3600);
        if let Ok(q) = q {
            assert!((0.0..=1.0).contains(&q.tr), "tr {}", q.tr);
        }
    }

    #[test]
    fn blackout_rejects_queries_and_submissions() {
        use fgcs_runtime::fault::FaultPlan;
        let plan = FaultPlan {
            blackout_rate: 1.0,
            blackout_len: 10,
            ..FaultPlan::none(1)
        };
        let mut node =
            HostNode::new(quiet_trace(1), AvailabilityModel::default()).with_fault_injector(plan);
        assert!(node.blacked_out());
        assert_eq!(node.predict_tr_qualified(600), Err(QueryError::Blackout));
        assert_eq!(node.current_host_load(), None);
        assert!(node.submit(GuestJob::new(1, 10.0, 50.0)).is_err());
        // The machine itself keeps running through the blackout.
        assert!(node.step());
    }

    #[test]
    fn trace_end_reported() {
        let mut node = HostNode::new(quiet_trace(1), AvailabilityModel::default());
        let per_day = 14_400;
        for i in 0..per_day {
            let more = node.step();
            if i + 1 < per_day {
                assert!(more);
            } else {
                assert!(!more);
            }
        }
        assert!(!node.step());
        // The trailing day was finalised exactly once.
        assert_eq!(node.history().len(), 1);
    }
}
