//! The iShare Gateway (paper §5.1): translates the State Manager's online
//! decisions into guest-process control — renice, suspend, resume, kill.

use fgcs_core::state::State;

use crate::contention::GuestPriority;
use crate::state_manager::OnlineDecision;

/// The control action applied to the guest process this period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestAction {
    /// Run at default priority (host load below `Th1`).
    RunDefault,
    /// Run reniced to the lowest priority (`Th1 ≤ L_H ≤ Th2`).
    RunLow,
    /// Keep the guest suspended (transient overload, or cooling down).
    Suspend,
    /// Kill the guest: the failure state is unrecoverable for it.
    Kill(State),
}

/// Per-guest control state machine.
#[derive(Debug, Clone, Copy)]
pub struct Gateway {
    /// Consecutive operational periods required after a suspension before
    /// the guest resumes (the paper resumes after the contention has
    /// diminished; one quiet monitoring period is the minimum).
    pub resume_quiet_steps: usize,
    suspended: bool,
    quiet: usize,
}

impl Gateway {
    /// Creates a gateway resuming after `resume_quiet_steps` quiet periods.
    #[must_use]
    pub fn new(resume_quiet_steps: usize) -> Gateway {
        Gateway {
            resume_quiet_steps,
            suspended: false,
            quiet: 0,
        }
    }

    /// Resets the control state (a new guest was launched).
    pub fn reset(&mut self) {
        self.suspended = false;
        self.quiet = 0;
    }

    /// Computes the action for this period from the manager's decision.
    pub fn step(&mut self, decision: OnlineDecision) -> GuestAction {
        match decision {
            OnlineDecision::Failed(state) => {
                self.suspended = false;
                self.quiet = 0;
                GuestAction::Kill(state)
            }
            OnlineDecision::Transient => {
                self.suspended = true;
                self.quiet = 0;
                GuestAction::Suspend
            }
            OnlineDecision::Operational(state) => {
                if self.suspended {
                    self.quiet += 1;
                    if self.quiet < self.resume_quiet_steps {
                        return GuestAction::Suspend;
                    }
                    self.suspended = false;
                    self.quiet = 0;
                }
                match state {
                    State::S1 => GuestAction::RunDefault,
                    _ => GuestAction::RunLow,
                }
            }
        }
    }
}

impl Default for Gateway {
    fn default() -> Self {
        Gateway::new(1)
    }
}

/// Maps a running action to the scheduler priority it implies.
#[must_use]
pub fn action_priority(action: GuestAction) -> Option<GuestPriority> {
    match action {
        GuestAction::RunDefault => Some(GuestPriority::Default),
        GuestAction::RunLow => Some(GuestPriority::Lowest),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_states_map_to_priorities() {
        let mut g = Gateway::default();
        assert_eq!(
            g.step(OnlineDecision::Operational(State::S1)),
            GuestAction::RunDefault
        );
        assert_eq!(
            g.step(OnlineDecision::Operational(State::S2)),
            GuestAction::RunLow
        );
    }

    #[test]
    fn transient_suspends_and_quiet_resumes() {
        let mut g = Gateway::new(2);
        assert_eq!(g.step(OnlineDecision::Transient), GuestAction::Suspend);
        // One quiet period is not enough with resume_quiet_steps = 2.
        assert_eq!(
            g.step(OnlineDecision::Operational(State::S1)),
            GuestAction::Suspend
        );
        assert_eq!(
            g.step(OnlineDecision::Operational(State::S1)),
            GuestAction::RunDefault
        );
    }

    #[test]
    fn failure_kills_immediately() {
        let mut g = Gateway::default();
        g.step(OnlineDecision::Transient);
        assert_eq!(
            g.step(OnlineDecision::Failed(State::S4)),
            GuestAction::Kill(State::S4)
        );
    }

    #[test]
    fn reset_clears_suspension() {
        let mut g = Gateway::new(5);
        g.step(OnlineDecision::Transient);
        g.reset();
        assert_eq!(
            g.step(OnlineDecision::Operational(State::S1)),
            GuestAction::RunDefault
        );
    }

    #[test]
    fn priority_mapping() {
        assert_eq!(
            action_priority(GuestAction::RunDefault),
            Some(GuestPriority::Default)
        );
        assert_eq!(
            action_priority(GuestAction::RunLow),
            Some(GuestPriority::Lowest)
        );
        assert_eq!(action_priority(GuestAction::Suspend), None);
        assert_eq!(action_priority(GuestAction::Kill(State::S5)), None);
    }
}
