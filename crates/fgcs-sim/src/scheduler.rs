//! The client-side Job Scheduler (paper §5.1): "the client's Job Scheduler
//! queries the gateways on the available machines for their temporal
//! reliability within the future time window of job execution, and decides
//! on which machine(s) the job would be executed."
//!
//! Several placement policies are provided so the proactive (prediction-
//! driven) scheduler can be compared against prediction-oblivious
//! baselines, quantifying the §1 claim that proactive management improves
//! job response times.

use fgcs_runtime::rng::{Rng, Xoshiro256};

use crate::checkpoint::CheckpointPolicy;
use crate::guest::GuestJob;
use crate::node::HostNode;

/// Candidate count from which the prediction-driven policies fan their TR
/// queries across worker threads. Below this, thread spawn/join overhead
/// exceeds the few-microsecond per-node query cost.
const PARALLEL_QUERY_THRESHOLD: usize = 4;

/// Queries every node's predicted TR over `horizon_secs` in parallel and
/// returns the results in node order — the cluster-wide counterpart of
/// [`HostNode::predict_tr`]. The result is element-for-element identical
/// to the sequential loop (`fgcs_runtime::parallel` guarantees index
/// ordering), so simulations stay deterministic regardless of core count.
pub fn predict_cluster(
    nodes: &[HostNode],
    horizon_secs: u32,
) -> Vec<Result<f64, fgcs_core::error::CoreError>> {
    fgcs_runtime::counter_add!("sim.scheduler.cluster_sweeps", 1);
    fgcs_runtime::histogram_record!("sim.scheduler.sweep_size", nodes.len() as u64);
    fgcs_runtime::parallel::par_map(nodes, |n| n.predict_tr(horizon_secs))
}

/// TR for each candidate index (with the neutral-prior fallback), fanned
/// across threads when the candidate set is large enough to pay for them.
fn candidate_trs(nodes: &[HostNode], candidates: &[usize], horizon_secs: u32) -> Vec<f64> {
    fgcs_runtime::histogram_record!("sim.scheduler.sweep_size", candidates.len() as u64);
    let query = |&i: &usize| {
        // Nodes without usable history fall back to a neutral prior
        // rather than being excluded.
        nodes[i].predict_tr(horizon_secs).unwrap_or(0.5)
    };
    if candidates.len() >= PARALLEL_QUERY_THRESHOLD {
        fgcs_runtime::counter_add!("sim.scheduler.parallel_sweeps", 1);
        fgcs_runtime::parallel::par_map(candidates, query)
    } else {
        candidates.iter().map(query).collect()
    }
}

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Pick the free node with the highest predicted temporal reliability
    /// over the job's estimated runtime (the paper's proposal).
    MaxReliability,
    /// Pick a uniformly random free node (prediction-oblivious baseline).
    Random,
    /// Cycle through free nodes in order (prediction-oblivious baseline).
    RoundRobin,
    /// Pick the free node with the lowest instantaneous host load — a
    /// reactive heuristic with information but no forecast.
    LeastLoaded,
    /// Maximise predicted reliability × expected speed: `TR · (1 − L_H)`.
    /// Temporal reliability alone ignores that a safe-but-busy machine runs
    /// the guest slowly; this extension folds the instantaneous leftover
    /// capacity into the score.
    ReliabilitySpeed,
}

/// A job-placement engine over a set of nodes.
#[derive(Debug)]
pub struct JobScheduler {
    policy: SchedulingPolicy,
    rng: Xoshiro256,
    rr_cursor: usize,
    /// Multiplier applied to the job's remaining work to estimate the
    /// reliability window (slack for contention-induced slowdown).
    pub runtime_slack: f64,
    /// Checkpointing applied to jobs at placement time.
    pub checkpoint: CheckpointPolicy,
}

impl JobScheduler {
    /// Creates a scheduler with the given policy; `seed` only matters for
    /// [`SchedulingPolicy::Random`].
    #[must_use]
    pub fn new(policy: SchedulingPolicy, seed: u64) -> JobScheduler {
        JobScheduler {
            policy,
            rng: Xoshiro256::seed_from_u64(seed),
            rr_cursor: 0,
            runtime_slack: 1.3,
            checkpoint: CheckpointPolicy::None,
        }
    }

    /// Sets the checkpoint policy applied at placement time.
    #[must_use]
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> JobScheduler {
        self.checkpoint = policy;
        self
    }

    /// Configures a job's checkpointing for a placement on `node`,
    /// consulting the node's prediction when the policy is adaptive.
    pub fn configure_job(&self, node: &HostNode, job: GuestJob) -> GuestJob {
        let tr = match self.checkpoint {
            CheckpointPolicy::Adaptive { .. } => {
                let horizon = (job.remaining_secs() * self.runtime_slack) as u32;
                node.predict_tr(horizon.max(60)).ok()
            }
            _ => None,
        };
        self.checkpoint.apply(job, tr)
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Chooses a node index for `job` among `nodes`, or `None` when no node
    /// can accept it right now.
    pub fn choose(&mut self, nodes: &[HostNode], job: &GuestJob) -> Option<usize> {
        let candidates: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.available())
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            SchedulingPolicy::Random => Some(candidates[self.rng.range_usize(0, candidates.len())]),
            SchedulingPolicy::RoundRobin => {
                let pick = candidates[self.rr_cursor % candidates.len()];
                self.rr_cursor += 1;
                Some(pick)
            }
            SchedulingPolicy::LeastLoaded => candidates.into_iter().min_by(|&a, &b| {
                let la = nodes[a].current_host_load().unwrap_or(1.0);
                let lb = nodes[b].current_host_load().unwrap_or(1.0);
                la.partial_cmp(&lb).expect("loads are finite")
            }),
            SchedulingPolicy::MaxReliability => {
                let horizon = (job.remaining_secs() * self.runtime_slack) as u32;
                let trs = candidate_trs(nodes, &candidates, horizon.max(60));
                let mut best: Option<(usize, f64)> = None;
                for (&i, &tr) in candidates.iter().zip(&trs) {
                    if best.map(|(_, b)| tr > b).unwrap_or(true) {
                        best = Some((i, tr));
                    }
                }
                best.map(|(i, _)| i)
            }
            SchedulingPolicy::ReliabilitySpeed => {
                let horizon = (job.remaining_secs() * self.runtime_slack) as u32;
                let trs = candidate_trs(nodes, &candidates, horizon.max(60));
                let mut best: Option<(usize, f64)> = None;
                for (&i, &tr) in candidates.iter().zip(&trs) {
                    let speed = 1.0 - nodes[i].current_host_load().unwrap_or(1.0);
                    let score = tr * speed.max(0.0);
                    if best.map(|(_, b)| score > b).unwrap_or(true) {
                        best = Some((i, score));
                    }
                }
                best.map(|(i, _)| i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::{AvailabilityModel, LoadSample};
    use fgcs_trace::MachineTrace;

    fn node_with_load(id: u64, cpu: f64, days: usize, warm: usize) -> HostNode {
        let model = AvailabilityModel::default();
        let samples = vec![
            LoadSample {
                host_cpu: cpu,
                free_mem_mb: 400.0,
                alive: true,
            };
            days * model.samples_per_day()
        ];
        let trace = MachineTrace {
            machine_id: id,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples,
        };
        let mut n = HostNode::new(trace, model);
        n.warm_up(warm);
        n
    }

    #[test]
    fn predict_cluster_matches_sequential_queries() {
        let nodes: Vec<HostNode> = (0..5u64)
            .map(|i| node_with_load(i, 0.1 + 0.05 * i as f64, 3, 2))
            .collect();
        let swept = predict_cluster(&nodes, 3600);
        let sequential: Vec<_> = nodes.iter().map(|n| n.predict_tr(3600)).collect();
        assert_eq!(swept.len(), sequential.len());
        for (par, seq) in swept.iter().zip(&sequential) {
            match (par, seq) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Err(_), Err(_)) => {}
                other => panic!("parallel/sequential disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn least_loaded_picks_quietest() {
        let nodes = vec![
            node_with_load(0, 0.5, 1, 0),
            node_with_load(1, 0.1, 1, 0),
            node_with_load(2, 0.3, 1, 0),
        ];
        let mut s = JobScheduler::new(SchedulingPolicy::LeastLoaded, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn round_robin_cycles() {
        let nodes = vec![node_with_load(0, 0.1, 1, 0), node_with_load(1, 0.1, 1, 0)];
        let mut s = JobScheduler::new(SchedulingPolicy::RoundRobin, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(0));
        assert_eq!(s.choose(&nodes, &job), Some(1));
        assert_eq!(s.choose(&nodes, &job), Some(0));
    }

    #[test]
    fn max_reliability_prefers_reliable_history() {
        // Node 0: history full of failures; node 1: quiet history.
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let mut bad_samples = Vec::new();
        for _ in 0..3 {
            for i in 0..per_day {
                // Heavy overload through the middle of every day.
                let cpu = if i % 200 < 60 { 0.95 } else { 0.1 };
                bad_samples.push(LoadSample {
                    host_cpu: cpu,
                    free_mem_mb: 400.0,
                    alive: true,
                });
            }
        }
        let bad_trace = MachineTrace {
            machine_id: 0,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples: bad_samples,
        };
        let mut bad = HostNode::new(bad_trace, model);
        bad.warm_up(2);
        let good = node_with_load(1, 0.1, 3, 2);
        let nodes = vec![bad, good];
        let mut s = JobScheduler::new(SchedulingPolicy::MaxReliability, 1);
        let job = GuestJob::new(1, 3600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn reliability_speed_balances_both_signals() {
        // Node 0: quiet history but currently loaded (slow). Node 1: quiet
        // history and currently idle. The combined policy must pick node 1.
        let busy_now = node_with_load(0, 0.55, 3, 2);
        let idle_now = node_with_load(1, 0.05, 3, 2);
        let nodes = vec![busy_now, idle_now];
        let mut s = JobScheduler::new(SchedulingPolicy::ReliabilitySpeed, 1);
        let job = GuestJob::new(1, 3600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn no_free_node_returns_none() {
        let mut busy = node_with_load(0, 0.1, 1, 0);
        busy.submit(GuestJob::new(9, 1e9, 50.0)).unwrap();
        let nodes = vec![busy];
        let mut s = JobScheduler::new(SchedulingPolicy::Random, 1);
        assert_eq!(s.choose(&nodes, &GuestJob::new(1, 10.0, 50.0)), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let nodes = vec![
            node_with_load(0, 0.1, 1, 0),
            node_with_load(1, 0.1, 1, 0),
            node_with_load(2, 0.1, 1, 0),
        ];
        let job = GuestJob::new(1, 10.0, 50.0);
        let picks_a: Vec<_> = {
            let mut s = JobScheduler::new(SchedulingPolicy::Random, 42);
            (0..10).map(|_| s.choose(&nodes, &job)).collect()
        };
        let picks_b: Vec<_> = {
            let mut s = JobScheduler::new(SchedulingPolicy::Random, 42);
            (0..10).map(|_| s.choose(&nodes, &job)).collect()
        };
        assert_eq!(picks_a, picks_b);
    }
}
