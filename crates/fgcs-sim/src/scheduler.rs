//! The client-side Job Scheduler (paper §5.1): "the client's Job Scheduler
//! queries the gateways on the available machines for their temporal
//! reliability within the future time window of job execution, and decides
//! on which machine(s) the job would be executed."
//!
//! Several placement policies are provided so the proactive (prediction-
//! driven) scheduler can be compared against prediction-oblivious
//! baselines, quantifying the §1 claim that proactive management improves
//! job response times.

use std::collections::HashMap;

use fgcs_core::robust::QualifiedTr;
use fgcs_runtime::rng::{Rng, Xoshiro256};

use crate::checkpoint::CheckpointPolicy;
use crate::guest::GuestJob;
use crate::node::{HostNode, QueryError};

/// Candidate count from which the prediction-driven policies fan their TR
/// queries across worker threads. Below this, thread spawn/join overhead
/// exceeds the few-microsecond per-node query cost.
const PARALLEL_QUERY_THRESHOLD: usize = 4;

/// Queries every node's predicted TR over `horizon_secs` in parallel and
/// returns the results in node order — the cluster-wide counterpart of
/// [`HostNode::predict_tr`]. The result is element-for-element identical
/// to the sequential loop (`fgcs_runtime::parallel` guarantees index
/// ordering), so simulations stay deterministic regardless of core count.
/// Each worker thread solves out of its own thread-local
/// [`fgcs_core::SolveScratch`] arena, so the sweep stays allocation-free
/// per query after the first solve on each worker.
pub fn predict_cluster(
    nodes: &[HostNode],
    horizon_secs: u32,
) -> Vec<Result<f64, fgcs_core::error::CoreError>> {
    fgcs_runtime::counter_add!("sim.scheduler.cluster_sweeps", 1);
    fgcs_runtime::histogram_record!("sim.scheduler.sweep_size", nodes.len() as u64);
    fgcs_runtime::parallel::par_map(nodes, |n| n.predict_tr(horizon_secs))
}

/// Queries every node's *qualified* TR over `horizon_secs` in parallel —
/// the robust counterpart of [`predict_cluster`]. A reachable node always
/// answers (degrading down to its prior); `Err` marks nodes that could not
/// be reached at all (monitoring blackout).
pub fn predict_cluster_qualified(
    nodes: &[HostNode],
    horizon_secs: u32,
) -> Vec<Result<QualifiedTr, QueryError>> {
    fgcs_runtime::counter_add!("sim.scheduler.cluster_sweeps", 1);
    fgcs_runtime::histogram_record!("sim.scheduler.sweep_size", nodes.len() as u64);
    fgcs_runtime::parallel::par_map(nodes, |n| n.predict_tr_qualified(horizon_secs))
}

/// Qualified TR for each candidate index, fanned across threads when the
/// candidate set is large enough to pay for them. Query failures stay
/// failures — counted in `sim.scheduler.predict_failures`, never papered
/// over with an invented TR.
fn candidate_predictions(
    nodes: &[HostNode],
    candidates: &[usize],
    horizon_secs: u32,
) -> Vec<Result<QualifiedTr, QueryError>> {
    fgcs_runtime::histogram_record!("sim.scheduler.sweep_size", candidates.len() as u64);
    let query = |&i: &usize| nodes[i].predict_tr_qualified(horizon_secs);
    let results = if candidates.len() >= PARALLEL_QUERY_THRESHOLD {
        fgcs_runtime::counter_add!("sim.scheduler.parallel_sweeps", 1);
        fgcs_runtime::parallel::par_map(candidates, query)
    } else {
        candidates.iter().map(query).collect()
    };
    let failures = results.iter().filter(|r| r.is_err()).count();
    if failures > 0 {
        fgcs_runtime::counter_add!("sim.scheduler.predict_failures", failures as u64);
    }
    let degraded = results
        .iter()
        .filter(|r| matches!(r, Ok(q) if q.quality.is_degraded()))
        .count();
    if degraded > 0 {
        fgcs_runtime::counter_add!("sim.scheduler.degraded_predictions", degraded as u64);
    }
    results
}

/// Consecutive failed queries before a node is blacklisted.
const BLACKLIST_THRESHOLD: u32 = 3;
/// Initial blacklist duration, in scheduling rounds.
const BLACKLIST_BASE_ROUNDS: u64 = 8;
/// Blacklist backoff ceiling, in scheduling rounds.
const BLACKLIST_MAX_ROUNDS: u64 = 256;

/// Per-node query-failure bookkeeping for the blacklist.
#[derive(Debug, Clone, Copy)]
struct BlacklistEntry {
    consecutive_failures: u32,
    barred_until_round: u64,
    backoff_rounds: u64,
}

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Pick the free node with the highest predicted temporal reliability
    /// over the job's estimated runtime (the paper's proposal).
    MaxReliability,
    /// Pick a uniformly random free node (prediction-oblivious baseline).
    Random,
    /// Cycle through free nodes in order (prediction-oblivious baseline).
    RoundRobin,
    /// Pick the free node with the lowest instantaneous host load — a
    /// reactive heuristic with information but no forecast.
    LeastLoaded,
    /// Maximise predicted reliability × expected speed: `TR · (1 − L_H)`.
    /// Temporal reliability alone ignores that a safe-but-busy machine runs
    /// the guest slowly; this extension folds the instantaneous leftover
    /// capacity into the score.
    ReliabilitySpeed,
}

/// A job-placement engine over a set of nodes.
#[derive(Debug)]
pub struct JobScheduler {
    policy: SchedulingPolicy,
    rng: Xoshiro256,
    rr_cursor: usize,
    /// Scheduling rounds seen so far (one per [`JobScheduler::choose`]).
    round: u64,
    /// Nodes whose queries keep failing, barred with exponential backoff.
    blacklist: HashMap<u64, BlacklistEntry>,
    /// Multiplier applied to the job's remaining work to estimate the
    /// reliability window (slack for contention-induced slowdown).
    pub runtime_slack: f64,
    /// Checkpointing applied to jobs at placement time.
    pub checkpoint: CheckpointPolicy,
}

impl JobScheduler {
    /// Creates a scheduler with the given policy; `seed` only matters for
    /// [`SchedulingPolicy::Random`].
    #[must_use]
    pub fn new(policy: SchedulingPolicy, seed: u64) -> JobScheduler {
        JobScheduler {
            policy,
            rng: Xoshiro256::seed_from_u64(seed),
            rr_cursor: 0,
            round: 0,
            blacklist: HashMap::new(),
            runtime_slack: 1.3,
            checkpoint: CheckpointPolicy::None,
        }
    }

    /// Sets the checkpoint policy applied at placement time.
    #[must_use]
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> JobScheduler {
        self.checkpoint = policy;
        self
    }

    /// Configures a job's checkpointing for a placement on `node`,
    /// consulting the node's prediction when the policy is adaptive.
    pub fn configure_job(&self, node: &HostNode, job: GuestJob) -> GuestJob {
        let tr = match self.checkpoint {
            CheckpointPolicy::Adaptive { .. } => {
                let horizon = (job.remaining_secs() * self.runtime_slack) as u32;
                node.predict_tr(horizon.max(60)).ok()
            }
            _ => None,
        };
        self.checkpoint.apply(job, tr)
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// Chooses a node index for `job` among `nodes`, or `None` when no node
    /// can accept it right now. As long as any candidate exists, the
    /// prediction-driven policies always return a decision: failed queries
    /// feed the blacklist instead of silently becoming invented TRs.
    pub fn choose(&mut self, nodes: &[HostNode], job: &GuestJob) -> Option<usize> {
        self.round += 1;
        let candidates: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.available())
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            SchedulingPolicy::Random => Some(candidates[self.rng.range_usize(0, candidates.len())]),
            SchedulingPolicy::RoundRobin => {
                let pick = candidates[self.rr_cursor % candidates.len()];
                self.rr_cursor += 1;
                Some(pick)
            }
            SchedulingPolicy::LeastLoaded => candidates.into_iter().min_by(|&a, &b| {
                // Probes are sanitized (non-finite loads become None), but
                // total ordering keeps even a hostile NaN from panicking.
                let la = nodes[a].current_host_load().unwrap_or(1.0);
                let lb = nodes[b].current_host_load().unwrap_or(1.0);
                la.total_cmp(&lb)
            }),
            SchedulingPolicy::MaxReliability => {
                let horizon = (job.remaining_secs() * self.runtime_slack) as u32;
                self.prediction_pick(nodes, &candidates, horizon.max(60), false)
            }
            SchedulingPolicy::ReliabilitySpeed => {
                let horizon = (job.remaining_secs() * self.runtime_slack) as u32;
                self.prediction_pick(nodes, &candidates, horizon.max(60), true)
            }
        }
    }

    /// The quality-tagged placement core shared by the prediction-driven
    /// policies: probe every non-blacklisted candidate, rank by
    /// `tr × confidence` (optionally × leftover speed, for
    /// [`SchedulingPolicy::ReliabilitySpeed`]), and feed query failures
    /// into the blacklist.
    fn prediction_pick(
        &mut self,
        nodes: &[HostNode],
        candidates: &[usize],
        horizon_secs: u32,
        weigh_speed: bool,
    ) -> Option<usize> {
        let probed: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| !self.is_barred(nodes[i].id))
            .collect();
        let skipped = candidates.len() - probed.len();
        if skipped > 0 {
            fgcs_runtime::counter_add!("sim.scheduler.blacklist_skips", skipped as u64);
        }
        let predictions = candidate_predictions(nodes, &probed, horizon_secs);
        let mut best: Option<(usize, f64)> = None;
        for (&i, prediction) in probed.iter().zip(&predictions) {
            match prediction {
                Ok(q) => {
                    self.record_query_success(nodes[i].id);
                    let mut score = q.score();
                    if weigh_speed {
                        let speed = 1.0 - nodes[i].current_host_load().unwrap_or(1.0);
                        score *= speed.max(0.0);
                    }
                    if best.map(|(_, b)| score > b).unwrap_or(true) {
                        best = Some((i, score));
                    }
                }
                Err(_) => self.record_query_failure(nodes[i].id),
            }
        }
        // A scheduler that answers "nobody" while free nodes exist would
        // stall the workload: when every probe failed (or everything is
        // barred), fall back to the first candidate deterministically and
        // let the submission attempt sort it out.
        best.map(|(i, _)| i).or_else(|| {
            fgcs_runtime::counter_add!("sim.scheduler.fallback_picks", 1);
            candidates.first().copied()
        })
    }

    /// Whether `node_id` is currently barred by the blacklist. Expired
    /// bars are re-probed on the next round (and re-barred with doubled
    /// backoff if they fail again).
    fn is_barred(&self, node_id: u64) -> bool {
        self.blacklist
            .get(&node_id)
            .is_some_and(|e| self.round < e.barred_until_round)
    }

    fn record_query_failure(&mut self, node_id: u64) {
        let entry = self.blacklist.entry(node_id).or_insert(BlacklistEntry {
            consecutive_failures: 0,
            barred_until_round: 0,
            backoff_rounds: BLACKLIST_BASE_ROUNDS,
        });
        entry.consecutive_failures += 1;
        if entry.consecutive_failures >= BLACKLIST_THRESHOLD {
            entry.barred_until_round = self.round + entry.backoff_rounds;
            entry.backoff_rounds = (entry.backoff_rounds * 2).min(BLACKLIST_MAX_ROUNDS);
            fgcs_runtime::counter_add!("sim.scheduler.blacklisted", 1);
        }
    }

    fn record_query_success(&mut self, node_id: u64) {
        self.blacklist.remove(&node_id);
    }

    /// Number of nodes currently barred by the blacklist.
    #[must_use]
    pub fn blacklisted_now(&self) -> usize {
        self.blacklist
            .values()
            .filter(|e| self.round < e.barred_until_round)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgcs_core::model::{AvailabilityModel, LoadSample};
    use fgcs_trace::MachineTrace;

    fn node_with_load(id: u64, cpu: f64, days: usize, warm: usize) -> HostNode {
        let model = AvailabilityModel::default();
        let samples = vec![
            LoadSample {
                host_cpu: cpu,
                free_mem_mb: 400.0,
                alive: true,
            };
            days * model.samples_per_day()
        ];
        let trace = MachineTrace {
            machine_id: id,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples,
        };
        let mut n = HostNode::new(trace, model);
        n.warm_up(warm);
        n
    }

    #[test]
    fn predict_cluster_matches_sequential_queries() {
        let nodes: Vec<HostNode> = (0..5u64)
            .map(|i| node_with_load(i, 0.1 + 0.05 * i as f64, 3, 2))
            .collect();
        let swept = predict_cluster(&nodes, 3600);
        let sequential: Vec<_> = nodes.iter().map(|n| n.predict_tr(3600)).collect();
        assert_eq!(swept.len(), sequential.len());
        for (par, seq) in swept.iter().zip(&sequential) {
            match (par, seq) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Err(_), Err(_)) => {}
                other => panic!("parallel/sequential disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn least_loaded_picks_quietest() {
        let nodes = vec![
            node_with_load(0, 0.5, 1, 0),
            node_with_load(1, 0.1, 1, 0),
            node_with_load(2, 0.3, 1, 0),
        ];
        let mut s = JobScheduler::new(SchedulingPolicy::LeastLoaded, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn round_robin_cycles() {
        let nodes = vec![node_with_load(0, 0.1, 1, 0), node_with_load(1, 0.1, 1, 0)];
        let mut s = JobScheduler::new(SchedulingPolicy::RoundRobin, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(0));
        assert_eq!(s.choose(&nodes, &job), Some(1));
        assert_eq!(s.choose(&nodes, &job), Some(0));
    }

    #[test]
    fn max_reliability_prefers_reliable_history() {
        // Node 0: history full of failures; node 1: quiet history.
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let mut bad_samples = Vec::new();
        for _ in 0..3 {
            for i in 0..per_day {
                // Heavy overload through the middle of every day.
                let cpu = if i % 200 < 60 { 0.95 } else { 0.1 };
                bad_samples.push(LoadSample {
                    host_cpu: cpu,
                    free_mem_mb: 400.0,
                    alive: true,
                });
            }
        }
        let bad_trace = MachineTrace {
            machine_id: 0,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples: bad_samples,
        };
        let mut bad = HostNode::new(bad_trace, model);
        bad.warm_up(2);
        let good = node_with_load(1, 0.1, 3, 2);
        let nodes = vec![bad, good];
        let mut s = JobScheduler::new(SchedulingPolicy::MaxReliability, 1);
        let job = GuestJob::new(1, 3600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn reliability_speed_balances_both_signals() {
        // Node 0: quiet history but currently loaded (slow). Node 1: quiet
        // history and currently idle. The combined policy must pick node 1.
        let busy_now = node_with_load(0, 0.55, 3, 2);
        let idle_now = node_with_load(1, 0.05, 3, 2);
        let nodes = vec![busy_now, idle_now];
        let mut s = JobScheduler::new(SchedulingPolicy::ReliabilitySpeed, 1);
        let job = GuestJob::new(1, 3600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn no_free_node_returns_none() {
        let mut busy = node_with_load(0, 0.1, 1, 0);
        busy.submit(GuestJob::new(9, 1e9, 50.0)).unwrap();
        let nodes = vec![busy];
        let mut s = JobScheduler::new(SchedulingPolicy::Random, 1);
        assert_eq!(s.choose(&nodes, &GuestJob::new(1, 10.0, 50.0)), None);
    }

    #[test]
    fn unreachable_node_is_blacklisted_with_backoff() {
        use fgcs_runtime::fault::FaultPlan;
        // Node 0 is permanently blacked out; node 1 is healthy. The
        // prediction policy must keep picking node 1, and after
        // BLACKLIST_THRESHOLD failed probes node 0 gets barred.
        let dark_plan = FaultPlan {
            blackout_rate: 1.0,
            blackout_len: 10,
            ..FaultPlan::none(1)
        };
        let dark = {
            let model = AvailabilityModel::default();
            let trace = MachineTrace {
                machine_id: 0,
                step_secs: 6,
                first_day_index: 0,
                physical_mem_mb: 512.0,
                samples: vec![LoadSample::idle(400.0); model.samples_per_day()],
            };
            HostNode::new(trace, model).with_fault_injector(dark_plan)
        };
        let healthy = node_with_load(1, 0.1, 3, 2);
        let nodes = vec![dark, healthy];
        let mut s = JobScheduler::new(SchedulingPolicy::MaxReliability, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        for _ in 0..BLACKLIST_THRESHOLD {
            assert_eq!(s.choose(&nodes, &job), Some(1));
        }
        assert_eq!(s.blacklisted_now(), 1);
        // While barred, the dark node is not even probed but the pick
        // stays correct.
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn all_probes_failing_still_yields_a_decision() {
        use fgcs_runtime::fault::FaultPlan;
        let model = AvailabilityModel::default();
        let dark_plan = FaultPlan {
            blackout_rate: 1.0,
            blackout_len: 10,
            ..FaultPlan::none(1)
        };
        let nodes: Vec<HostNode> = (0..2u64)
            .map(|id| {
                let trace = MachineTrace {
                    machine_id: id,
                    step_secs: 6,
                    first_day_index: 0,
                    physical_mem_mb: 512.0,
                    samples: vec![LoadSample::idle(400.0); model.samples_per_day()],
                };
                HostNode::new(trace, model).with_fault_injector(dark_plan.clone())
            })
            .collect();
        let mut s = JobScheduler::new(SchedulingPolicy::MaxReliability, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        // Every probe fails, and eventually every node is barred — the
        // scheduler must still return a deterministic decision each round.
        for _ in 0..20 {
            assert_eq!(s.choose(&nodes, &job), Some(0));
        }
    }

    #[test]
    fn degraded_history_loses_to_exact_history() {
        // Node 0 has no history at all (prior-quality answer); node 1 has
        // a healthy warm history (exact answer). Even though the prior TR
        // on a quiet trace could be numerically close, the confidence
        // discount must push the pick to the exact node.
        let cold = node_with_load(0, 0.1, 3, 0);
        let warm = node_with_load(1, 0.1, 3, 2);
        let nodes = vec![cold, warm];
        let mut s = JobScheduler::new(SchedulingPolicy::MaxReliability, 1);
        let job = GuestJob::new(1, 600.0, 50.0);
        assert_eq!(s.choose(&nodes, &job), Some(1));
    }

    #[test]
    fn qualified_cluster_sweep_matches_sequential() {
        let nodes: Vec<HostNode> = (0..5u64)
            .map(|i| node_with_load(i, 0.1 + 0.05 * i as f64, 3, 2))
            .collect();
        let swept = predict_cluster_qualified(&nodes, 3600);
        for (node, result) in nodes.iter().zip(&swept) {
            let seq = node.predict_tr_qualified(3600).unwrap();
            let par = result.as_ref().unwrap();
            assert_eq!(par.tr.to_bits(), seq.tr.to_bits());
            assert_eq!(par.quality, seq.quality);
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let nodes = vec![
            node_with_load(0, 0.1, 1, 0),
            node_with_load(1, 0.1, 1, 0),
            node_with_load(2, 0.1, 1, 0),
        ];
        let job = GuestJob::new(1, 10.0, 50.0);
        let picks_a: Vec<_> = {
            let mut s = JobScheduler::new(SchedulingPolicy::Random, 42);
            (0..10).map(|_| s.choose(&nodes, &job)).collect()
        };
        let picks_b: Vec<_> = {
            let mut s = JobScheduler::new(SchedulingPolicy::Random, 42);
            (0..10).map(|_| s.choose(&nodes, &job)).collect()
        };
        assert_eq!(picks_a, picks_b);
    }
}
