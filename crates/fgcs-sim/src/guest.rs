//! Guest jobs: the CPU-bound batch programs whose response time the whole
//! prediction machinery exists to protect (paper §1: "response time rather
//! than throughput is the primary performance metric").

use fgcs_core::state::State;
use fgcs_runtime::impl_json_struct;
use fgcs_runtime::json::{FromJson, Json, JsonError, ToJson};

use crate::contention::GuestPriority;

/// Checkpointing configuration: periodically persist progress so a kill
/// loses at most one interval (plus the checkpoint overhead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// Seconds of *accomplished work* between checkpoints.
    pub interval_secs: f64,
    /// Work-time cost of taking one checkpoint, in seconds.
    pub cost_secs: f64,
}

impl_json_struct!(CheckpointConfig {
    interval_secs,
    cost_secs,
});

/// Why a guest job stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuestOutcome {
    /// The job finished all its work.
    Completed {
        /// Tick at which it completed.
        at_tick: u64,
    },
    /// The job was killed by the gateway.
    Killed {
        /// Tick of the kill.
        at_tick: u64,
        /// The failure state that caused it.
        reason: State,
    },
}

// Mirrors the externally-tagged layout serde derived for these variants:
// `{"Completed":{"at_tick":5}}` / `{"Killed":{"at_tick":9,"reason":"S5"}}`.
impl ToJson for GuestOutcome {
    fn to_json(&self) -> Json {
        match *self {
            GuestOutcome::Completed { at_tick } => Json::Obj(vec![(
                "Completed".to_string(),
                Json::Obj(vec![("at_tick".to_string(), at_tick.to_json())]),
            )]),
            GuestOutcome::Killed { at_tick, reason } => Json::Obj(vec![(
                "Killed".to_string(),
                Json::Obj(vec![
                    ("at_tick".to_string(), at_tick.to_json()),
                    ("reason".to_string(), reason.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for GuestOutcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Ok(body) = v.field("Completed") {
            return Ok(GuestOutcome::Completed {
                at_tick: body.get("at_tick")?,
            });
        }
        if let Ok(body) = v.field("Killed") {
            return Ok(GuestOutcome::Killed {
                at_tick: body.get("at_tick")?,
                reason: body.get("reason")?,
            });
        }
        Err(JsonError(format!(
            "expected GuestOutcome object, found {}",
            v.kind()
        )))
    }
}

/// Execution status of a guest process on a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuestStatus {
    /// Running at the given priority.
    Running(GuestPriority),
    /// Temporarily suspended during a transient load spike.
    Suspended,
    /// Finished, one way or the other.
    Finished(GuestOutcome),
}

/// A CPU-bound guest job.
#[derive(Debug, Clone, PartialEq)]
pub struct GuestJob {
    /// Job identifier.
    pub id: u64,
    /// CPU-seconds of work required at full machine speed.
    pub work_secs: f64,
    /// Working-set size in MB.
    pub working_set_mb: f64,
    /// Optional checkpointing.
    pub checkpoint: Option<CheckpointConfig>,
    /// Work accomplished so far (CPU-seconds).
    pub progress_secs: f64,
    /// Work safely persisted by the last checkpoint.
    pub checkpointed_secs: f64,
    /// Work spent on checkpoint overhead so far.
    pub overhead_secs: f64,
    /// CPU-seconds already paid into the checkpoint currently being taken
    /// (checkpoints span multiple monitoring periods).
    checkpoint_paid: f64,
}

impl GuestJob {
    /// Creates a fresh job.
    #[must_use]
    pub fn new(id: u64, work_secs: f64, working_set_mb: f64) -> GuestJob {
        GuestJob {
            id,
            work_secs,
            working_set_mb,
            checkpoint: None,
            progress_secs: 0.0,
            checkpointed_secs: 0.0,
            overhead_secs: 0.0,
            checkpoint_paid: 0.0,
        }
    }

    /// Enables checkpointing.
    #[must_use]
    pub fn with_checkpointing(mut self, cfg: CheckpointConfig) -> GuestJob {
        self.checkpoint = Some(cfg);
        self
    }

    /// Advances the job by `dt_secs` of wall time at the given CPU
    /// allocation (fraction of the machine). Returns `true` when the job
    /// completed within this step. Checkpoints are taken (and paid for)
    /// whenever an interval of new work completes.
    pub fn advance(&mut self, cpu_fraction: f64, dt_secs: f64) -> bool {
        if self.is_complete() {
            return true;
        }
        let mut gained = cpu_fraction.clamp(0.0, 1.0) * dt_secs;
        let Some(cp) = self.checkpoint else {
            self.progress_secs += gained;
            return self.is_complete();
        };
        while gained > 1e-12 && !self.is_complete() {
            let next_boundary = self.checkpointed_secs + cp.interval_secs;
            let at_boundary = self.progress_secs >= next_boundary - 1e-9;
            if at_boundary || self.checkpoint_paid > 0.0 {
                // A checkpoint is in progress; it spans monitoring periods.
                let pay = gained.min(cp.cost_secs - self.checkpoint_paid);
                self.checkpoint_paid += pay;
                self.overhead_secs += pay;
                gained -= pay;
                if self.checkpoint_paid >= cp.cost_secs - 1e-9 {
                    fgcs_runtime::counter_add!("sim.checkpoint.taken", 1);
                    self.checkpointed_secs = self.progress_secs;
                    self.checkpoint_paid = 0.0;
                }
            } else {
                // Run real work up to the next boundary or completion.
                let run = gained
                    .min(next_boundary - self.progress_secs)
                    .min(self.work_secs - self.progress_secs);
                self.progress_secs += run;
                gained -= run;
            }
        }
        self.is_complete()
    }

    /// Rolls progress back to the last checkpoint (or zero), as happens
    /// when the guest is killed and later restarted. A checkpoint that was
    /// in flight is lost.
    pub fn rollback(&mut self) {
        self.progress_secs = self.checkpointed_secs;
        self.checkpoint_paid = 0.0;
    }

    /// Takes an out-of-band checkpoint immediately (used when migrating a
    /// job off a machine): all progress becomes durable.
    pub fn force_checkpoint(&mut self) {
        fgcs_runtime::counter_add!("sim.checkpoint.forced", 1);
        self.checkpointed_secs = self.progress_secs;
        self.checkpoint_paid = 0.0;
    }

    /// Remaining work in CPU-seconds.
    #[must_use]
    pub fn remaining_secs(&self) -> f64 {
        (self.work_secs - self.progress_secs).max(0.0)
    }

    /// Whether all work is done.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.progress_secs >= self.work_secs - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates_scaled_work() {
        let mut j = GuestJob::new(1, 100.0, 50.0);
        assert!(!j.advance(0.5, 60.0)); // 30s of work
        assert!((j.progress_secs - 30.0).abs() < 1e-9);
        assert!(!j.is_complete());
        assert!(j.advance(1.0, 70.0));
        assert!(j.is_complete());
        assert_eq!(j.remaining_secs(), 0.0);
    }

    #[test]
    fn zero_allocation_makes_no_progress() {
        let mut j = GuestJob::new(1, 10.0, 50.0);
        assert!(!j.advance(0.0, 1000.0));
        assert_eq!(j.progress_secs, 0.0);
    }

    #[test]
    fn rollback_without_checkpoint_restarts_from_scratch() {
        let mut j = GuestJob::new(1, 100.0, 50.0);
        j.advance(1.0, 40.0);
        j.rollback();
        assert_eq!(j.progress_secs, 0.0);
    }

    #[test]
    fn checkpoint_bounds_rollback_loss() {
        let mut j = GuestJob::new(1, 100.0, 50.0).with_checkpointing(CheckpointConfig {
            interval_secs: 20.0,
            cost_secs: 1.0,
        });
        j.advance(1.0, 50.0); // crosses checkpoints at 20 and 40
        assert!(j.checkpointed_secs >= 40.0 - 1e-9);
        assert!(j.overhead_secs >= 2.0 - 1e-9);
        let before = j.progress_secs;
        j.rollback();
        assert!(j.progress_secs <= before);
        assert!((j.progress_secs - j.checkpointed_secs).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_cost_delays_completion() {
        let plain_time = {
            let mut j = GuestJob::new(1, 100.0, 50.0);
            let mut t = 0.0;
            while !j.advance(1.0, 1.0) {
                t += 1.0;
            }
            t
        };
        let cp_time = {
            let mut j = GuestJob::new(2, 100.0, 50.0).with_checkpointing(CheckpointConfig {
                interval_secs: 10.0,
                cost_secs: 1.0,
            });
            let mut t = 0.0;
            while !j.advance(1.0, 1.0) {
                t += 1.0;
            }
            t
        };
        assert!(cp_time > plain_time, "{cp_time} vs {plain_time}");
    }

    #[test]
    fn overshoot_is_clamped() {
        let mut j = GuestJob::new(1, 10.0, 50.0);
        assert!(j.advance(2.0, 100.0)); // fraction clamps to 1.0
        assert!(j.is_complete());
    }
}
