//! A multi-node FGCS testbed: drives all host nodes in lockstep, feeds a
//! workload of guest jobs through a [`JobScheduler`], and records response
//! times — the end-to-end loop the paper's §5.1 framework implies.

use fgcs_core::model::AvailabilityModel;
use fgcs_runtime::impl_json_struct;
use fgcs_trace::MachineTrace;

use crate::guest::{GuestJob, GuestOutcome};
use crate::migration::MigrationPolicy;
use crate::node::HostNode;
use crate::scheduler::JobScheduler;

/// A job to be injected into the cluster at a given tick.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job identifier.
    pub id: u64,
    /// CPU-seconds of work at full speed.
    pub work_secs: f64,
    /// Working set in MB.
    pub working_set_mb: f64,
    /// Tick at which the job arrives at the scheduler.
    pub arrival_tick: u64,
    /// Job-group identifier: the paper's guest applications are often
    /// "composed of multiple related jobs that are submitted as a group and
    /// must all complete before the results being used" (§1). Jobs sharing
    /// a group id form such a batch; `None` for independent jobs.
    pub group: Option<u64>,
}

impl JobSpec {
    /// An independent job.
    #[must_use]
    pub fn new(id: u64, work_secs: f64, working_set_mb: f64, arrival_tick: u64) -> JobSpec {
        JobSpec {
            id,
            work_secs,
            working_set_mb,
            arrival_tick,
            group: None,
        }
    }

    /// Assigns the job to a group.
    #[must_use]
    pub fn in_group(mut self, group: u64) -> JobSpec {
        self.group = Some(group);
        self
    }
}

/// Response-time summary of one job group: the group completes when its
/// *last* member does.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRecord {
    /// Group identifier.
    pub group: u64,
    /// Member job ids.
    pub members: Vec<u64>,
    /// Earliest member arrival.
    pub arrival_tick: u64,
    /// Tick at which the last member completed (`None` if any member is
    /// unfinished).
    pub completed_tick: Option<u64>,
    /// Total kills across the group.
    pub kills: usize,
}

impl_json_struct!(GroupRecord {
    group,
    members,
    arrival_tick,
    completed_tick,
    kills,
});

impl GroupRecord {
    /// Group response time in seconds.
    #[must_use]
    pub fn response_secs(&self, step_secs: u32) -> Option<f64> {
        self.completed_tick
            .map(|c| (c.saturating_sub(self.arrival_tick)) as f64 * f64::from(step_secs))
    }
}

/// Aggregates per-job records into per-group records (§1: all members must
/// complete before the results are usable).
#[must_use]
pub fn group_records(specs: &[JobSpec], records: &[JobRecord]) -> Vec<GroupRecord> {
    let mut groups: Vec<GroupRecord> = Vec::new();
    for spec in specs {
        let Some(gid) = spec.group else { continue };
        let record = records.iter().find(|r| r.id == spec.id);
        let entry = match groups.iter_mut().find(|g| g.group == gid) {
            Some(g) => g,
            None => {
                groups.push(GroupRecord {
                    group: gid,
                    members: Vec::new(),
                    arrival_tick: spec.arrival_tick,
                    completed_tick: Some(0),
                    kills: 0,
                });
                groups.last_mut().expect("just pushed")
            }
        };
        entry.members.push(spec.id);
        entry.arrival_tick = entry.arrival_tick.min(spec.arrival_tick);
        if let Some(r) = record {
            entry.kills += r.kills;
            entry.completed_tick = match (entry.completed_tick, r.completed_tick) {
                (Some(acc), Some(c)) => Some(acc.max(c)),
                _ => None,
            };
        } else {
            entry.completed_tick = None;
        }
    }
    groups
}

/// The fate of one workload job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job identifier.
    pub id: u64,
    /// CPU-seconds of work the job required.
    pub work_secs: f64,
    /// Arrival tick.
    pub arrival_tick: u64,
    /// Completion tick (None if the simulation ended first).
    pub completed_tick: Option<u64>,
    /// Number of times the job was killed and had to restart.
    pub kills: usize,
    /// Node ids the job ran on, in order.
    pub placements: Vec<u64>,
    /// CPU-seconds spent taking checkpoints.
    pub checkpoint_overhead_secs: f64,
    /// Number of proactive migrations the job went through.
    pub migrations: usize,
}

impl_json_struct!(JobRecord {
    id,
    work_secs,
    arrival_tick,
    completed_tick,
    kills,
    placements,
    checkpoint_overhead_secs,
    migrations,
});

impl JobRecord {
    /// Response time in seconds (wall time from arrival to completion).
    #[must_use]
    pub fn response_secs(&self, step_secs: u32) -> Option<f64> {
        self.completed_tick
            .map(|c| (c.saturating_sub(self.arrival_tick)) as f64 * f64::from(step_secs))
    }
}

/// A set of host nodes driven in lockstep.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<HostNode>,
    step_secs: u32,
}

impl Cluster {
    /// Builds a cluster from traces, all replayed under the same model.
    ///
    /// # Panics
    /// Panics if the traces disagree on the monitoring period or if no
    /// traces are given.
    #[must_use]
    pub fn from_traces(traces: Vec<MachineTrace>, model: AvailabilityModel) -> Cluster {
        assert!(!traces.is_empty(), "cluster needs at least one node");
        let step_secs = traces[0].step_secs;
        assert!(
            traces.iter().all(|t| t.step_secs == step_secs),
            "traces must share one monitoring period"
        );
        Cluster {
            nodes: traces
                .into_iter()
                .map(|t| HostNode::new(t, model))
                .collect(),
            step_secs,
        }
    }

    /// Warm-up: replay `days` of every node's trace into its history.
    pub fn warm_up(&mut self, days: usize) {
        for node in &mut self.nodes {
            node.warm_up(days);
        }
    }

    /// The nodes (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[HostNode] {
        &self.nodes
    }

    /// The monitoring period.
    #[must_use]
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// Runs `jobs` through the cluster under `scheduler` until every node's
    /// trace is exhausted, and returns one record per job. Killed jobs are
    /// re-queued (restarting from their last checkpoint, or from scratch).
    pub fn run_workload(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut JobScheduler,
    ) -> Vec<JobRecord> {
        self.run_workload_with_migration(jobs, scheduler, None)
    }

    /// Like [`Cluster::run_workload`], but with optional proactive
    /// migration: running jobs are periodically re-evaluated and moved off
    /// hosts whose predicted reliability has collapsed.
    pub fn run_workload_with_migration(
        &mut self,
        jobs: Vec<JobSpec>,
        scheduler: &mut JobScheduler,
        migration: Option<MigrationPolicy>,
    ) -> Vec<JobRecord> {
        let mut records: Vec<JobRecord> = jobs
            .iter()
            .map(|j| JobRecord {
                id: j.id,
                work_secs: j.work_secs,
                arrival_tick: j.arrival_tick,
                completed_tick: None,
                kills: 0,
                placements: Vec::new(),
                checkpoint_overhead_secs: 0.0,
                migrations: 0,
            })
            .collect();
        // Pending queue: (ready_tick, guest job). Jobs keep identity across
        // restarts via their id.
        let mut pending: Vec<(u64, GuestJob)> = jobs
            .iter()
            .map(|j| {
                (
                    j.arrival_tick,
                    GuestJob::new(j.id, j.work_secs, j.working_set_mb),
                )
            })
            .collect();
        pending.sort_by_key(|(t, j)| (*t, j.id));

        let horizon = self
            .nodes
            .iter()
            .map(HostNode::total_ticks)
            .max()
            .unwrap_or(0);
        let mut now = self.nodes.iter().map(HostNode::tick).min().unwrap_or(0);

        while now < horizon {
            // Try to place ready jobs.
            let mut unplaced = Vec::new();
            for (ready, job) in std::mem::take(&mut pending) {
                if ready > now {
                    unplaced.push((ready, job));
                    continue;
                }
                let job_id = job.id;
                match scheduler.choose(&self.nodes, &job) {
                    Some(idx) => {
                        let node_id = self.nodes[idx].id;
                        let job = scheduler.configure_job(&self.nodes[idx], job);
                        match self.nodes[idx].submit(job) {
                            Ok(()) => {
                                if let Some(r) = records.iter_mut().find(|r| r.id == job_id) {
                                    r.placements.push(node_id);
                                }
                            }
                            Err(job) => unplaced.push((now + 1, job)),
                        }
                    }
                    None => unplaced.push((now + 1, job)),
                }
            }
            pending = unplaced;

            // Proactive migration checks.
            if let Some(policy) = migration {
                let interval = policy.check_interval_steps(self.step_secs);
                if now % interval == 0 {
                    self.run_migration_round(policy, scheduler, now, &mut records, &mut pending);
                }
            }

            // Advance every node one tick.
            for node in &mut self.nodes {
                node.step();
            }
            now += 1;

            // Collect outcomes; killed jobs re-enter the queue.
            for node in &mut self.nodes {
                for rec in node.take_records() {
                    let job_id = rec.job.id;
                    let Some(r) = records.iter_mut().find(|r| r.id == job_id) else {
                        continue;
                    };
                    // The job carries its accumulated overhead across
                    // restarts, so the latest figure is the total.
                    r.checkpoint_overhead_secs = rec.job.overhead_secs;
                    match rec.outcome {
                        GuestOutcome::Completed { at_tick } => {
                            r.completed_tick = Some(at_tick);
                        }
                        GuestOutcome::Killed { at_tick, .. } => {
                            r.kills += 1;
                            let mut job = rec.job;
                            job.rollback();
                            pending.push((at_tick + 1, job));
                        }
                    }
                }
            }
            pending.sort_by_key(|(t, j)| (*t, j.id));
        }
        records
    }

    /// One migration sweep: for every busy node, compare its predicted TR
    /// over the job's remaining runtime with the best available
    /// alternative's, and recall the guest when the policy says so.
    fn run_migration_round(
        &mut self,
        policy: MigrationPolicy,
        scheduler: &JobScheduler,
        now: u64,
        records: &mut [JobRecord],
        pending: &mut Vec<(u64, GuestJob)>,
    ) {
        let n = self.nodes.len();
        for i in 0..n {
            // An unreachable node can neither answer the TR query nor hand
            // its guest over; skip it until connectivity returns.
            if self.nodes[i].blacked_out() {
                continue;
            }
            let Some(remaining) = self.nodes[i].guest_remaining_secs() else {
                continue;
            };
            let horizon = ((remaining * scheduler.runtime_slack) as u32).max(60);
            let Ok(current_tr) = self.nodes[i].predict_tr(horizon) else {
                continue;
            };
            let best_alt = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(j, node)| *j != i && node.available() && !node.blacked_out())
                .filter_map(|(_, node)| node.predict_tr(horizon).ok())
                .fold(None::<f64>, |acc, tr| {
                    Some(acc.map_or(tr, |best| best.max(tr)))
                });
            if policy.should_migrate(current_tr, best_alt) {
                if let Some(job) = self.nodes[i].recall_guest() {
                    fgcs_runtime::counter_add!("sim.migration.count", 1);
                    if let Some(r) = records.iter_mut().find(|r| r.id == job.id) {
                        r.migrations += 1;
                    }
                    let cost_steps =
                        (policy.migration_cost_secs / f64::from(self.step_secs)).ceil() as u64;
                    pending.push((now + cost_steps.max(1), job));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulingPolicy;
    use fgcs_core::model::LoadSample;

    fn quiet_trace(id: u64, days: usize) -> MachineTrace {
        let model = AvailabilityModel::default();
        MachineTrace {
            machine_id: id,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples: vec![LoadSample::idle(400.0); days * model.samples_per_day()],
        }
    }

    #[test]
    fn jobs_complete_on_quiet_cluster() {
        let traces = vec![quiet_trace(0, 1), quiet_trace(1, 1)];
        let mut cluster = Cluster::from_traces(traces, AvailabilityModel::default());
        let jobs = vec![
            JobSpec::new(1, 600.0, 50.0, 0),
            JobSpec::new(2, 1200.0, 50.0, 10),
        ];
        let mut sched = JobScheduler::new(SchedulingPolicy::RoundRobin, 0);
        let records = cluster.run_workload(jobs, &mut sched);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert!(r.completed_tick.is_some(), "job {} unfinished", r.id);
            assert_eq!(r.kills, 0);
            assert_eq!(r.placements.len(), 1);
        }
        // 600 s of work ≈ 100 ticks.
        let resp = records[0].response_secs(6).unwrap();
        assert!((590.0..=660.0).contains(&resp), "response {resp}");
    }

    #[test]
    fn killed_jobs_are_restarted_elsewhere() {
        // Node 0 dies shortly after start; node 1 stays quiet.
        let mut dying = quiet_trace(0, 1);
        for s in &mut dying.samples[50..] {
            *s = LoadSample::revoked();
        }
        let traces = vec![dying, quiet_trace(1, 1)];
        let mut cluster = Cluster::from_traces(traces, AvailabilityModel::default());
        let jobs = vec![JobSpec::new(1, 1200.0, 50.0, 0)];
        // RoundRobin places on node 0 first -> killed -> restarted on node 1.
        let mut sched = JobScheduler::new(SchedulingPolicy::RoundRobin, 0);
        let records = cluster.run_workload(jobs, &mut sched);
        assert_eq!(records[0].kills, 1);
        assert!(records[0].completed_tick.is_some());
        assert_eq!(records[0].placements, vec![0, 1]);
    }

    #[test]
    fn queueing_when_all_nodes_busy() {
        let traces = vec![quiet_trace(0, 1)];
        let mut cluster = Cluster::from_traces(traces, AvailabilityModel::default());
        let jobs = vec![
            JobSpec::new(1, 600.0, 50.0, 0),
            JobSpec::new(2, 600.0, 50.0, 0),
        ];
        let mut sched = JobScheduler::new(SchedulingPolicy::RoundRobin, 0);
        let records = cluster.run_workload(jobs, &mut sched);
        let c1 = records[0].completed_tick.unwrap();
        let c2 = records[1].completed_tick.unwrap();
        assert!(c2 > c1, "second job must wait: {c1} vs {c2}");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        let _ = Cluster::from_traces(vec![], AvailabilityModel::default());
    }

    /// Builds a trace whose every day is overloaded between `from_hour` and
    /// `to_hour`.
    fn daily_overload_trace(
        id: u64,
        days: usize,
        from_hour: usize,
        to_hour: usize,
    ) -> MachineTrace {
        let model = AvailabilityModel::default();
        let per_day = model.samples_per_day();
        let per_hour = per_day / 24;
        let mut samples = Vec::with_capacity(days * per_day);
        for _ in 0..days {
            for i in 0..per_day {
                let hour = i / per_hour;
                let cpu = if (from_hour..to_hour).contains(&hour) {
                    0.95
                } else {
                    0.05
                };
                samples.push(LoadSample {
                    host_cpu: cpu,
                    free_mem_mb: 400.0,
                    alive: true,
                });
            }
        }
        MachineTrace {
            machine_id: id,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples,
        }
    }

    #[test]
    fn group_records_aggregate_members() {
        let specs = vec![
            JobSpec::new(1, 100.0, 10.0, 0).in_group(7),
            JobSpec::new(2, 100.0, 10.0, 5).in_group(7),
            JobSpec::new(3, 100.0, 10.0, 2), // independent
        ];
        let mk = |id: u64, done: Option<u64>, kills: usize| JobRecord {
            id,
            work_secs: 100.0,
            arrival_tick: 0,
            completed_tick: done,
            kills,
            placements: vec![0],
            checkpoint_overhead_secs: 0.0,
            migrations: 0,
        };
        let records = vec![mk(1, Some(50), 1), mk(2, Some(80), 0), mk(3, Some(10), 0)];
        let groups = group_records(&specs, &records);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.group, 7);
        assert_eq!(g.members, vec![1, 2]);
        assert_eq!(g.arrival_tick, 0);
        // Group completes with its LAST member.
        assert_eq!(g.completed_tick, Some(80));
        assert_eq!(g.kills, 1);
        assert_eq!(g.response_secs(6), Some(480.0));
    }

    #[test]
    fn unfinished_member_leaves_group_incomplete() {
        let specs = vec![
            JobSpec::new(1, 100.0, 10.0, 0).in_group(1),
            JobSpec::new(2, 100.0, 10.0, 0).in_group(1),
        ];
        let mk = |id: u64, done: Option<u64>| JobRecord {
            id,
            work_secs: 100.0,
            arrival_tick: 0,
            completed_tick: done,
            kills: 0,
            placements: vec![],
            checkpoint_overhead_secs: 0.0,
            migrations: 0,
        };
        let records = vec![mk(1, Some(50)), mk(2, None)];
        let groups = group_records(&specs, &records);
        assert_eq!(groups[0].completed_tick, None);
        assert_eq!(groups[0].response_secs(6), None);
    }

    #[test]
    fn proactive_migration_rescues_doomed_job() {
        use crate::migration::MigrationPolicy;
        use crate::scheduler::SchedulingPolicy;

        // Node 0 is overloaded 01:00-06:00 every day; node 1 is quiet.
        // A 2-hour job arrives at 00:00 on day 3 and RoundRobin places it
        // on node 0, where it is doomed to be killed at 01:00.
        let run = |migration: Option<MigrationPolicy>| {
            let traces = vec![daily_overload_trace(0, 4, 1, 6), quiet_trace(1, 4)];
            let mut cluster = Cluster::from_traces(traces, AvailabilityModel::default());
            cluster.warm_up(3);
            let per_day = 14_400u64;
            let jobs = vec![JobSpec::new(1, 2.0 * 3600.0, 50.0, 3 * per_day)];
            let mut sched = JobScheduler::new(SchedulingPolicy::RoundRobin, 0);
            cluster.run_workload_with_migration(jobs, &mut sched, migration)
        };

        let without = run(None);
        assert!(without[0].kills >= 1, "baseline job should be killed");

        let with = run(Some(MigrationPolicy {
            check_interval_secs: 600,
            tr_threshold: 0.5,
            min_improvement: 0.2,
            migration_cost_secs: 60.0,
        }));
        assert!(with[0].migrations >= 1, "job should have migrated");
        assert_eq!(with[0].kills, 0, "migration should pre-empt the kill");
        assert!(with[0].completed_tick.is_some());
        assert!(
            with[0].completed_tick.unwrap() <= without[0].completed_tick.unwrap_or(u64::MAX),
            "migration should not be slower than kill-and-restart"
        );
    }
}
