//! Resource publication and discovery — the iShare P2P layer (paper §5.1:
//! "a P2P network is applied for resource publication and discovery", and
//! the client's Job Scheduler "queries the gateways on the available
//! machines for their temporal reliability").
//!
//! We model the layer's *observable semantics* rather than its wire
//! protocol: gateways periodically publish advertisements containing their
//! current state and a temporal-reliability snapshot at a few standard
//! horizons; clients discover candidates from the directory, which may be
//! **stale** — an ad survives until its TTL expires, so a client can act on
//! a picture that is up to one publication interval old. This is exactly
//! the failure mode a decentralised deployment has, and the tests pin it
//! down.

use fgcs_runtime::impl_json_struct;
use std::collections::HashMap;

/// The reliability horizons (seconds) every advertisement carries.
pub const AD_HORIZONS_SECS: [u32; 4] = [1800, 3600, 2 * 3600, 4 * 3600];

/// One gateway's advertisement of its machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceAd {
    /// The advertising node.
    pub node_id: u64,
    /// Tick at which the ad was published.
    pub published_at: u64,
    /// Whether the machine could accept a guest when the ad was made.
    pub available: bool,
    /// Host CPU load at publication time.
    pub host_load: f64,
    /// Free memory at publication time (MB).
    pub free_mem_mb: f64,
    /// `(horizon_secs, predicted TR)` pairs at [`AD_HORIZONS_SECS`];
    /// empty when the node had no usable history yet.
    pub tr_snapshot: Vec<(u32, f64)>,
}

impl_json_struct!(ResourceAd {
    node_id,
    published_at,
    available,
    host_load,
    free_mem_mb,
    tr_snapshot,
});

impl ResourceAd {
    /// The advertised TR at the smallest horizon ≥ `horizon_secs`
    /// (conservative: a longer-horizon TR under-promises), or the longest
    /// available horizon when the request exceeds them all.
    #[must_use]
    pub fn tr_at(&self, horizon_secs: u32) -> Option<f64> {
        let mut best: Option<(u32, f64)> = None;
        for &(h, tr) in &self.tr_snapshot {
            if h >= horizon_secs {
                match best {
                    Some((bh, _)) if bh <= h => {}
                    _ => best = Some((h, tr)),
                }
            }
        }
        best.map(|(_, tr)| tr)
            .or_else(|| self.tr_snapshot.iter().map(|&(_, tr)| tr).next_back())
    }
}

/// The (logically centralised) view of the publication overlay: maps node
/// ids to their freshest advertisement and expires them by TTL.
#[derive(Debug, Clone, Default)]
pub struct ResourceDirectory {
    ads: HashMap<u64, ResourceAd>,
    /// Ads older than this many ticks are invisible to queries.
    ttl_ticks: u64,
}

impl ResourceDirectory {
    /// Creates a directory with the given advertisement TTL.
    #[must_use]
    pub fn new(ttl_ticks: u64) -> ResourceDirectory {
        ResourceDirectory {
            ads: HashMap::new(),
            ttl_ticks,
        }
    }

    /// Publishes (or refreshes) a node's advertisement.
    pub fn publish(&mut self, ad: ResourceAd) {
        self.ads.insert(ad.node_id, ad);
    }

    /// Removes a node's advertisement (graceful departure).
    pub fn withdraw(&mut self, node_id: u64) {
        self.ads.remove(&node_id);
    }

    /// All live (non-expired) advertisements at `now`, in node-id order.
    #[must_use]
    pub fn live_ads(&self, now: u64) -> Vec<&ResourceAd> {
        let mut ads: Vec<&ResourceAd> = self
            .ads
            .values()
            .filter(|ad| now.saturating_sub(ad.published_at) <= self.ttl_ticks)
            .collect();
        ads.sort_by_key(|ad| ad.node_id);
        ads
    }

    /// Discovery query: live, available nodes with at least `min_free_mb`
    /// of memory, ranked by advertised TR at `horizon_secs` (descending).
    #[must_use]
    pub fn discover(&self, now: u64, horizon_secs: u32, min_free_mb: f64) -> Vec<u64> {
        let mut ranked: Vec<(u64, f64)> = self
            .live_ads(now)
            .into_iter()
            .filter(|ad| ad.available && ad.free_mem_mb >= min_free_mb)
            .map(|ad| (ad.node_id, ad.tr_at(horizon_secs).unwrap_or(0.5)))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("TR values are finite")
                .then(a.0.cmp(&b.0))
        });
        ranked.into_iter().map(|(id, _)| id).collect()
    }

    /// Number of stored ads (live or expired).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// `true` when no ads are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }
}

/// Builds an advertisement from a live host node.
#[must_use]
pub fn advertise(node: &crate::node::HostNode, now: u64) -> ResourceAd {
    let tr_snapshot = AD_HORIZONS_SECS
        .iter()
        .filter_map(|&h| node.predict_tr(h).ok().map(|tr| (h, tr)))
        .collect();
    ResourceAd {
        node_id: node.id,
        published_at: now,
        available: node.available(),
        host_load: node.current_host_load().unwrap_or(1.0),
        free_mem_mb: f64::MAX, // trace-level free memory is in the samples
        tr_snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ad(node_id: u64, published_at: u64, tr_1h: f64) -> ResourceAd {
        ResourceAd {
            node_id,
            published_at,
            available: true,
            host_load: 0.1,
            free_mem_mb: 400.0,
            tr_snapshot: vec![(1800, (tr_1h + 0.05).min(1.0)), (3600, tr_1h)],
        }
    }

    #[test]
    fn publish_and_discover_ranks_by_tr() {
        let mut dir = ResourceDirectory::new(100);
        dir.publish(ad(1, 0, 0.4));
        dir.publish(ad(2, 0, 0.9));
        dir.publish(ad(3, 0, 0.7));
        assert_eq!(dir.discover(10, 3600, 0.0), vec![2, 3, 1]);
    }

    #[test]
    fn expired_ads_are_invisible() {
        let mut dir = ResourceDirectory::new(100);
        dir.publish(ad(1, 0, 0.9));
        dir.publish(ad(2, 150, 0.4));
        assert_eq!(dir.discover(200, 3600, 0.0), vec![2]);
        assert_eq!(dir.live_ads(200).len(), 1);
        assert_eq!(dir.len(), 2, "expired ads remain stored until refreshed");
    }

    #[test]
    fn republishing_refreshes_the_ad() {
        let mut dir = ResourceDirectory::new(100);
        dir.publish(ad(1, 0, 0.2));
        dir.publish(ad(1, 500, 0.8));
        assert_eq!(dir.len(), 1);
        let ads = dir.live_ads(510);
        assert_eq!(ads[0].tr_at(3600), Some(0.8));
    }

    #[test]
    fn unavailable_and_memory_poor_nodes_filtered() {
        let mut dir = ResourceDirectory::new(100);
        let mut busy = ad(1, 0, 0.9);
        busy.available = false;
        dir.publish(busy);
        let mut small = ad(2, 0, 0.9);
        small.free_mem_mb = 50.0;
        dir.publish(small);
        dir.publish(ad(3, 0, 0.5));
        assert_eq!(dir.discover(1, 3600, 100.0), vec![3]);
    }

    #[test]
    fn withdraw_removes_node() {
        let mut dir = ResourceDirectory::new(100);
        dir.publish(ad(1, 0, 0.9));
        dir.withdraw(1);
        assert!(dir.is_empty());
        assert!(dir.discover(1, 3600, 0.0).is_empty());
    }

    #[test]
    fn tr_at_picks_smallest_covering_horizon() {
        let ad = ResourceAd {
            node_id: 1,
            published_at: 0,
            available: true,
            host_load: 0.0,
            free_mem_mb: 100.0,
            tr_snapshot: vec![(1800, 0.9), (3600, 0.8), (7200, 0.6)],
        };
        assert_eq!(ad.tr_at(1000), Some(0.9));
        assert_eq!(ad.tr_at(1800), Some(0.9));
        assert_eq!(ad.tr_at(2000), Some(0.8));
        assert_eq!(ad.tr_at(7000), Some(0.6));
        // Beyond all horizons: fall back to the longest one.
        assert_eq!(ad.tr_at(20_000), Some(0.6));
    }

    #[test]
    fn tr_at_empty_snapshot_is_none() {
        let ad = ResourceAd {
            node_id: 1,
            published_at: 0,
            available: true,
            host_load: 0.0,
            free_mem_mb: 100.0,
            tr_snapshot: vec![],
        };
        assert_eq!(ad.tr_at(3600), None);
    }

    #[test]
    fn stale_directory_can_mislead_clients() {
        // The decentralisation trade-off the TTL models: a node that died
        // right after publishing keeps being discovered until its ad ages
        // out.
        let mut dir = ResourceDirectory::new(50);
        dir.publish(ad(1, 100, 0.95)); // node dies at tick 101
        assert_eq!(dir.discover(140, 3600, 0.0), vec![1], "stale hit");
        assert!(dir.discover(151, 3600, 0.0).is_empty(), "TTL expiry");
    }

    #[test]
    fn advertise_reflects_node_state() {
        use fgcs_core::model::{AvailabilityModel, LoadSample};
        use fgcs_trace::MachineTrace;
        let model = AvailabilityModel::default();
        let trace = MachineTrace {
            machine_id: 9,
            step_secs: 6,
            first_day_index: 0,
            physical_mem_mb: 512.0,
            samples: vec![LoadSample::idle(400.0); 8 * model.samples_per_day()],
        };
        let mut node = crate::node::HostNode::new(trace, model);
        node.warm_up(7);
        let ad = advertise(&node, node.tick());
        assert_eq!(ad.node_id, 9);
        assert!(ad.available);
        assert_eq!(ad.tr_snapshot.len(), AD_HORIZONS_SECS.len());
        for &(_, tr) in &ad.tr_snapshot {
            assert_eq!(tr, 1.0, "quiet machine advertises perfect TR");
        }
    }
}
