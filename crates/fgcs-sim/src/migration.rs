//! Proactive guest migration: move a running job off a machine whose
//! predicted reliability has collapsed, before the failure happens.
//!
//! The paper's §5.1 notes that "checkpointing can also be used to migrate
//! the guest process off the machine if resource becomes unavailable"; this
//! module makes that decision *predictively*: while a guest runs, the
//! cluster periodically re-queries the host's temporal reliability over the
//! job's remaining runtime, and when it falls below a threshold — and some
//! other node looks sufficiently better — the job is checkpointed and
//! re-queued.

use fgcs_runtime::impl_json_struct;

/// Configuration of proactive migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPolicy {
    /// Seconds between reliability re-checks of running jobs.
    pub check_interval_secs: u32,
    /// Migrate when the current host's predicted TR over the remaining
    /// runtime drops below this.
    pub tr_threshold: f64,
    /// ... and only if the best alternative node beats the current host's
    /// TR by at least this margin (prevents ping-ponging between equally
    /// mediocre machines).
    pub min_improvement: f64,
    /// Work-seconds it costs to checkpoint + transfer the job.
    pub migration_cost_secs: f64,
}

impl_json_struct!(MigrationPolicy {
    check_interval_secs,
    tr_threshold,
    min_improvement,
    migration_cost_secs,
});

impl MigrationPolicy {
    /// A conservative default: re-check every 10 minutes, migrate below
    /// TR 0.3 when another node is at least 0.2 better, 60 s cost.
    #[must_use]
    pub fn conservative() -> MigrationPolicy {
        MigrationPolicy {
            check_interval_secs: 600,
            tr_threshold: 0.3,
            min_improvement: 0.2,
            migration_cost_secs: 60.0,
        }
    }

    /// Decides whether to migrate given the current host's predicted TR and
    /// the best alternative's.
    #[must_use]
    pub fn should_migrate(&self, current_tr: f64, best_alternative_tr: Option<f64>) -> bool {
        if current_tr >= self.tr_threshold {
            return false;
        }
        match best_alternative_tr {
            Some(alt) => alt >= current_tr + self.min_improvement,
            None => false,
        }
    }

    /// Check interval in monitoring steps.
    #[must_use]
    pub fn check_interval_steps(&self, step_secs: u32) -> u64 {
        u64::from((self.check_interval_secs / step_secs.max(1)).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_migration_above_threshold() {
        let p = MigrationPolicy::conservative();
        assert!(!p.should_migrate(0.5, Some(0.99)));
    }

    #[test]
    fn migration_requires_better_alternative() {
        let p = MigrationPolicy::conservative();
        assert!(p.should_migrate(0.1, Some(0.5)));
        assert!(!p.should_migrate(0.1, Some(0.25))); // improvement too small
        assert!(!p.should_migrate(0.1, None));
    }

    #[test]
    fn interval_steps_round_down_but_stay_positive() {
        let p = MigrationPolicy {
            check_interval_secs: 10,
            ..MigrationPolicy::conservative()
        };
        assert_eq!(p.check_interval_steps(6), 1);
        assert_eq!(MigrationPolicy::conservative().check_interval_steps(6), 100);
    }
}
