//! Failure-aware checkpointing: turning the availability prediction into a
//! checkpoint-interval decision.
//!
//! This implements the proactive job management the paper motivates in §1
//! ("turning on checkpointing adaptively based on the results of
//! availability prediction") and defers to future work in §8 — the subject
//! of the authors' follow-up paper.
//!
//! The adaptive policy converts the predicted temporal reliability over the
//! job's expected runtime into an effective failure rate
//! `λ = −ln(TR) / T`, then applies Young's first-order optimal interval
//! `τ* = √(2·C/λ)` (C = checkpoint cost). A machine predicted to be very
//! reliable gets sparse (or no) checkpoints; a risky one checkpoints often.

use crate::guest::{CheckpointConfig, GuestJob};

/// How to checkpoint guest jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// No checkpointing: a kill restarts the job from scratch.
    None,
    /// A fixed interval regardless of the target machine.
    Fixed {
        /// Work seconds between checkpoints.
        interval_secs: f64,
        /// Cost of one checkpoint in work seconds.
        cost_secs: f64,
    },
    /// Interval chosen per placement from the predicted temporal
    /// reliability (Young's formula).
    Adaptive {
        /// Cost of one checkpoint in work seconds.
        cost_secs: f64,
        /// Intervals are clamped to at least this (avoid checkpoint storms
        /// on hopeless machines).
        min_interval_secs: f64,
        /// Reliability above which checkpointing is skipped entirely.
        skip_above_tr: f64,
    },
}

impl CheckpointPolicy {
    /// A reasonable adaptive default: 30 s checkpoints, ≥ 5 min apart,
    /// skipped when the window is ≥ 99 % reliable.
    #[must_use]
    pub fn adaptive() -> CheckpointPolicy {
        CheckpointPolicy::Adaptive {
            cost_secs: 30.0,
            min_interval_secs: 300.0,
            skip_above_tr: 0.99,
        }
    }

    /// Configures `job`'s checkpointing for a placement whose predicted
    /// temporal reliability over the job's runtime is `predicted_tr`
    /// (`None` when no prediction was available).
    #[must_use]
    pub fn apply(&self, job: GuestJob, predicted_tr: Option<f64>) -> GuestJob {
        match *self {
            CheckpointPolicy::None => job,
            CheckpointPolicy::Fixed {
                interval_secs,
                cost_secs,
            } => job.with_checkpointing(CheckpointConfig {
                interval_secs,
                cost_secs,
            }),
            CheckpointPolicy::Adaptive {
                cost_secs,
                min_interval_secs,
                skip_above_tr,
            } => {
                let horizon = job.remaining_secs().max(1.0);
                // Without a prediction, assume a mediocre machine.
                let tr = predicted_tr.unwrap_or(0.5).clamp(1e-6, 1.0);
                if tr >= skip_above_tr {
                    return job; // reliable enough: checkpointing not worth it
                }
                let lambda = -(tr.ln()) / horizon;
                let interval = youngs_interval(lambda, cost_secs).max(min_interval_secs);
                if interval >= horizon {
                    return job; // one checkpoint would never fire
                }
                job.with_checkpointing(CheckpointConfig {
                    interval_secs: interval,
                    cost_secs,
                })
            }
        }
    }
}

/// Young's first-order optimal checkpoint interval `√(2·C/λ)` for failure
/// rate `λ` (per second) and checkpoint cost `C` (seconds).
///
/// Returns `f64::INFINITY` for a zero failure rate.
#[must_use]
pub fn youngs_interval(failure_rate: f64, cost_secs: f64) -> f64 {
    if failure_rate <= 0.0 {
        return f64::INFINITY;
    }
    (2.0 * cost_secs / failure_rate).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn youngs_formula_scales_as_sqrt() {
        let a = youngs_interval(1e-4, 30.0);
        let b = youngs_interval(4e-4, 30.0);
        assert!(
            (a / b - 2.0).abs() < 1e-9,
            "quadrupled rate halves interval"
        );
        assert_eq!(youngs_interval(0.0, 30.0), f64::INFINITY);
    }

    #[test]
    fn none_policy_leaves_job_untouched() {
        let job = GuestJob::new(1, 3600.0, 50.0);
        let out = CheckpointPolicy::None.apply(job.clone(), Some(0.2));
        assert_eq!(out, job);
    }

    #[test]
    fn fixed_policy_always_checkpoints() {
        let job = GuestJob::new(1, 3600.0, 50.0);
        let out = CheckpointPolicy::Fixed {
            interval_secs: 600.0,
            cost_secs: 10.0,
        }
        .apply(job, Some(1.0));
        assert_eq!(
            out.checkpoint,
            Some(CheckpointConfig {
                interval_secs: 600.0,
                cost_secs: 10.0
            })
        );
    }

    #[test]
    fn adaptive_skips_reliable_machines() {
        let job = GuestJob::new(1, 3600.0, 50.0);
        let out = CheckpointPolicy::adaptive().apply(job, Some(0.995));
        assert_eq!(out.checkpoint, None);
    }

    #[test]
    fn adaptive_checkpoints_risky_machines_more_often() {
        let job = GuestJob::new(1, 8.0 * 3600.0, 50.0);
        let risky = CheckpointPolicy::adaptive()
            .apply(job.clone(), Some(0.05))
            .checkpoint
            .expect("risky machine must checkpoint");
        let safer = CheckpointPolicy::adaptive()
            .apply(job, Some(0.7))
            .checkpoint
            .expect("moderately risky machine must checkpoint");
        assert!(
            risky.interval_secs < safer.interval_secs,
            "risky {} vs safer {}",
            risky.interval_secs,
            safer.interval_secs
        );
        assert!(risky.interval_secs >= 300.0, "min interval respected");
    }

    #[test]
    fn adaptive_without_prediction_uses_prior() {
        let job = GuestJob::new(1, 4.0 * 3600.0, 50.0);
        let out = CheckpointPolicy::adaptive().apply(job, None);
        assert!(out.checkpoint.is_some(), "prior of 0.5 should checkpoint");
    }

    #[test]
    fn adaptive_skips_when_interval_exceeds_job() {
        // Short job on a mildly risky machine: one checkpoint would never
        // fire before completion.
        let job = GuestJob::new(1, 120.0, 50.0);
        let out = CheckpointPolicy::adaptive().apply(job, Some(0.9));
        assert_eq!(out.checkpoint, None);
    }
}
