//! A small deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotone sequence
//! number breaks ties), which keeps cluster simulations reproducible
//! run-to-run regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: u64, event: E) {
        fgcs_runtime::counter_add!("sim.events.scheduled", 1);
        let entry = Entry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let popped = self.heap.pop().map(|Reverse(e)| (e.time, e.event));
        if popped.is_some() {
            fgcs_runtime::counter_add!("sim.events.dispatched", 1);
        }
        popped
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, "c");
        q.push(1, "a");
        q.push(3, "b");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((3, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2, "first");
        q.push(2, "second");
        q.push(2, "third");
        assert_eq!(q.pop(), Some((2, "first")));
        assert_eq!(q.pop(), Some((2, "second")));
        assert_eq!(q.pop(), Some((2, "third")));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, ());
        q.push(4, ());
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
