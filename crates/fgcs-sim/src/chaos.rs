//! Seeded chaos campaigns: drive a faulted cluster for thousands of steps
//! and measure whether the robustness invariants hold.
//!
//! A campaign composes every injection boundary in the workspace:
//!
//! * the traces themselves are corrupted pre-replay
//!   ([`fgcs_trace::corrupt_trace`]) — damage that happened *before*
//!   ingestion,
//! * every node gets a live [`FaultInjector`](fgcs_runtime::fault) on its
//!   monitoring stream — damage happening *while* the system runs,
//! * the scheduler keeps placing jobs through blackouts and degraded
//!   predictions.
//!
//! Everything is deterministic from the [`ChaosConfig`]: the same config
//! always produces the same [`ChaosReport`], digest included, and a
//! zero-fault plan produces bit-identical results to no plan at all.
//! Those two properties are what `tests/chaos.rs` and the CI chaos smoke
//! stage assert.

use fgcs_core::model::AvailabilityModel;
use fgcs_core::robust::PredictionQuality;
use fgcs_runtime::fault::FaultPlan;
use fgcs_runtime::impl_json_struct;
use fgcs_trace::{corrupt_trace, TraceConfig, TraceGenerator};

use crate::guest::{GuestJob, GuestOutcome};
use crate::node::HostNode;
use crate::scheduler::{predict_cluster_qualified, JobScheduler, SchedulingPolicy};

/// Configuration of one chaos campaign. Fully determines the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed for traces, fault plan and scheduler alike.
    pub seed: u64,
    /// Number of host nodes.
    pub machines: usize,
    /// Trace days replayed into history before the measured phase.
    pub warmup_days: usize,
    /// Measured simulation steps (monitoring periods).
    pub steps: usize,
    /// The fault plan; `None` runs the pristine, unfaulted pipeline.
    pub plan: Option<FaultPlan>,
    /// Sweep the whole cluster for qualified TRs every this many steps.
    pub predict_every_steps: usize,
    /// Submit a fresh job every this many steps.
    pub job_every_steps: usize,
    /// Work per submitted job, in CPU-seconds.
    pub job_work_secs: f64,
    /// Run every prediction through the verbatim paper-order solver
    /// instead of the default error-bounded fast path. Scheduling
    /// decisions must be identical either way (`decision_digest` agrees);
    /// TR bits may differ within the 1e-12 fast-path budget, so `digest`
    /// may not.
    pub paper_oracle: bool,
}

impl ChaosConfig {
    /// A campaign under the aggressive [`FaultPlan::chaos`] plan.
    #[must_use]
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            machines: 4,
            warmup_days: 2,
            steps: 10_000,
            plan: Some(FaultPlan::chaos(seed)),
            predict_every_steps: 25,
            job_every_steps: 50,
            job_work_secs: 1_800.0,
            paper_oracle: false,
        }
    }

    /// The same campaign with no fault plan at all (the pristine
    /// pipeline) — the reference side of the zero-fault identity check.
    #[must_use]
    pub fn without_faults(mut self) -> ChaosConfig {
        self.plan = None;
        self
    }

    /// Replaces the fault plan.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> ChaosConfig {
        self.plan = Some(plan);
        self
    }

    /// Forces every prediction through the verbatim paper-order solver.
    #[must_use]
    pub fn with_paper_oracle(mut self) -> ChaosConfig {
        self.paper_oracle = true;
        self
    }
}

/// What a campaign observed. Every field is deterministic from the
/// config; `digest` folds each prediction (TR bits + quality) and each
/// scheduling decision into one order-sensitive FNV-1a hash, so two
/// reports agree on it only if the runs agreed step for step.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Steps actually simulated.
    pub steps: u64,
    /// Scheduling rounds that returned a placement decision.
    pub decisions: u64,
    /// Scheduling rounds with no available candidate at all.
    pub no_candidate_rounds: u64,
    /// Qualified TR answers received across all sweeps.
    pub predictions: u64,
    /// TR answers outside `[0, 1]` (an invariant violation — must be 0).
    pub out_of_range: u64,
    /// Cluster queries rejected because the node was blacked out.
    pub blackout_rejections: u64,
    /// Answers per quality tier.
    pub exact: u64,
    /// Stale-kernel answers.
    pub stale: u64,
    /// Widened-window answers.
    pub widened: u64,
    /// Conservative-prior answers.
    pub prior: u64,
    /// Smallest TR seen (1.0 when no predictions were made).
    pub tr_min: f64,
    /// Largest TR seen (0.0 when no predictions were made).
    pub tr_max: f64,
    /// Jobs accepted by a node.
    pub submitted: u64,
    /// Placement decisions whose submission was rejected by the node.
    pub submit_rejected: u64,
    /// Guests that finished their work.
    pub completed: u64,
    /// Guests killed by failures.
    pub killed: u64,
    /// Order-sensitive FNV-1a digest over predictions and decisions.
    pub digest: u64,
    /// Order-sensitive FNV-1a digest over scheduling outcomes only (the
    /// chosen node index, no-candidate rounds, blackout rejections) —
    /// *not* the TR bits. This is the quantity the fast-vs-oracle solver
    /// equivalence check compares: solvers may differ in the last few TR
    /// ulps, but the decisions they drive must be identical.
    pub decision_digest: u64,
}

impl_json_struct!(ChaosReport {
    steps,
    decisions,
    no_candidate_rounds,
    predictions,
    out_of_range,
    blackout_rejections,
    exact,
    stale,
    widened,
    prior,
    tr_min,
    tr_max,
    submitted,
    submit_rejected,
    completed,
    killed,
    digest,
    decision_digest,
});

impl ChaosReport {
    /// Whether the campaign upheld the robustness invariants it can check
    /// itself: every TR in range, and every scheduling round produced an
    /// outcome (which the control flow guarantees — a round is either a
    /// decision or a no-candidate round by construction).
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.out_of_range == 0 && self.tr_min >= 0.0 && self.tr_max <= 1.0
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Runs one chaos campaign. Deterministic: the same config yields the
/// same report, bit for bit (including `tr_min`/`tr_max`/`digest`).
///
/// # Panics
/// Panics when `config.machines` is zero.
#[must_use]
pub fn run_campaign(config: &ChaosConfig) -> ChaosReport {
    assert!(
        config.machines > 0,
        "chaos campaign needs at least one node"
    );
    let model = AvailabilityModel::default();
    let per_day = model.samples_per_day();
    // Enough trace for warm-up plus the measured steps, with a day of
    // slack so final-day truncation cannot starve the run.
    let days = config.warmup_days + config.steps / per_day + 2;

    let mut nodes: Vec<HostNode> = (0..config.machines as u64)
        .map(|id| {
            let cfg = TraceConfig::lab_machine(config.seed).with_machine_id(id);
            let mut trace = TraceGenerator::new(cfg).generate_days(days);
            if let Some(plan) = &config.plan {
                corrupt_trace(&mut trace, plan);
            }
            let node = HostNode::new(trace, model).with_solver_policy(if config.paper_oracle {
                fgcs_core::predictor::SolverPolicy::PaperOracle
            } else {
                fgcs_core::predictor::SolverPolicy::Fast
            });
            match &config.plan {
                Some(plan) => node.with_fault_injector(plan.clone()),
                None => node,
            }
        })
        .collect();
    for node in &mut nodes {
        node.warm_up(config.warmup_days);
    }

    let mut scheduler = JobScheduler::new(SchedulingPolicy::MaxReliability, config.seed);
    let horizon = ((config.job_work_secs * scheduler.runtime_slack) as u32).max(60);

    let mut report = ChaosReport {
        steps: 0,
        decisions: 0,
        no_candidate_rounds: 0,
        predictions: 0,
        out_of_range: 0,
        blackout_rejections: 0,
        exact: 0,
        stale: 0,
        widened: 0,
        prior: 0,
        tr_min: 1.0,
        tr_max: 0.0,
        submitted: 0,
        submit_rejected: 0,
        completed: 0,
        killed: 0,
        digest: FNV_OFFSET,
        decision_digest: FNV_OFFSET,
    };
    let mut next_job_id = 1u64;

    for step in 0..config.steps {
        if config.predict_every_steps > 0 && step % config.predict_every_steps == 0 {
            for result in predict_cluster_qualified(&nodes, horizon) {
                match result {
                    Ok(q) => {
                        report.predictions += 1;
                        if !(0.0..=1.0).contains(&q.tr) {
                            report.out_of_range += 1;
                        }
                        report.tr_min = report.tr_min.min(q.tr);
                        report.tr_max = report.tr_max.max(q.tr);
                        match q.quality {
                            PredictionQuality::Exact => report.exact += 1,
                            PredictionQuality::Stale => report.stale += 1,
                            PredictionQuality::Widened => report.widened += 1,
                            PredictionQuality::Prior => report.prior += 1,
                        }
                        report.digest = fnv(report.digest, q.tr.to_bits());
                        report.digest = fnv(report.digest, q.quality.confidence().to_bits());
                    }
                    Err(_) => {
                        report.blackout_rejections += 1;
                        report.digest = fnv(report.digest, 0xB1AC_0007);
                        report.decision_digest = fnv(report.decision_digest, 0xB1AC_0007);
                    }
                }
            }
        }
        if config.job_every_steps > 0 && step % config.job_every_steps == 0 {
            let job = GuestJob::new(next_job_id, config.job_work_secs, 50.0);
            next_job_id += 1;
            match scheduler.choose(&nodes, &job) {
                Some(idx) => {
                    report.decisions += 1;
                    report.digest = fnv(report.digest, idx as u64);
                    report.decision_digest = fnv(report.decision_digest, idx as u64);
                    let job = scheduler.configure_job(&nodes[idx], job);
                    match nodes[idx].submit(job) {
                        Ok(()) => report.submitted += 1,
                        Err(_) => report.submit_rejected += 1,
                    }
                }
                None => {
                    report.no_candidate_rounds += 1;
                    report.digest = fnv(report.digest, u64::MAX);
                    report.decision_digest = fnv(report.decision_digest, u64::MAX);
                }
            }
        }
        for node in &mut nodes {
            node.step();
        }
        report.steps += 1;
    }

    for node in &mut nodes {
        for record in node.take_records() {
            match record.outcome {
                GuestOutcome::Completed { .. } => report.completed += 1,
                GuestOutcome::Killed { .. } => report.killed += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> ChaosConfig {
        ChaosConfig {
            machines: 2,
            warmup_days: 1,
            steps: 600,
            ..ChaosConfig::new(seed)
        }
    }

    #[test]
    fn campaign_upholds_invariants_under_chaos() {
        let report = run_campaign(&small(7));
        assert!(report.invariants_hold(), "{report:?}");
        assert_eq!(report.steps, 600);
        assert!(report.predictions > 0);
        // Every scheduling round resolved one way or the other.
        assert_eq!(report.decisions + report.no_candidate_rounds, 600 / 50);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&small(11));
        let b = run_campaign(&small(11));
        assert_eq!(a, b);
        assert_eq!(a.tr_min.to_bits(), b.tr_min.to_bits());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_campaign(&small(1));
        let b = run_campaign(&small(2));
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn zero_fault_plan_matches_unfaulted_pipeline() {
        let zero = run_campaign(&small(5).with_plan(FaultPlan::none(5)));
        let pristine = run_campaign(&small(5).without_faults());
        assert_eq!(zero, pristine);
    }

    #[test]
    fn paper_oracle_campaign_makes_identical_decisions() {
        let fast = run_campaign(&small(13));
        let oracle = run_campaign(&small(13).with_paper_oracle());
        assert_eq!(fast.decision_digest, oracle.decision_digest);
        assert_eq!(fast.decisions, oracle.decisions);
        assert_eq!(fast.submitted, oracle.submitted);
        assert_eq!(fast.completed, oracle.completed);
        assert_eq!(fast.killed, oracle.killed);
    }
}
