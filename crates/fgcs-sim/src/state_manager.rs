//! The State Manager daemon (paper §5): online state classification,
//! history logging and the prediction endpoint.
//!
//! Online classification must decide *now*, without the lookahead the
//! offline classifier enjoys: when the load first exceeds `Th2` the guest
//! is suspended; only if the overload persists for the transient tolerance
//! is CPU unavailability (S3) declared and the guest killed. When the spike
//! subsides in time, the samples are retroactively recorded under the
//! surrounding operational state — so the logs the manager accumulates
//! match what [`fgcs_core::classify::StateClassifier`] would produce
//! offline (up to spikes at day boundaries).

use fgcs_core::cache::QhCache;
use fgcs_core::error::CoreError;
use fgcs_core::log::{DayLog, HistoryStore, StateLog};
use fgcs_core::model::{AvailabilityModel, LoadSample};
use fgcs_core::predictor::{SmpPredictor, SolverPolicy};
use fgcs_core::robust::{PredictionQuality, QualifiedTr, RobustPredictor};
use fgcs_core::state::State;
use fgcs_core::window::{DayType, TimeWindow};

use crate::monitor::{MonitorReport, ResourceMonitor};

/// The manager's per-period verdict, driving the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineDecision {
    /// The machine is in an operational state (S1 or S2).
    Operational(State),
    /// Load above `Th2`, still within the transient tolerance: suspend the
    /// guest and wait.
    Transient,
    /// An unrecoverable failure state: the guest must be killed.
    Failed(State),
}

/// Kernels memoized per manager: enough for the handful of distinct
/// (window, day-type) coordinates a scheduling round asks about, small
/// enough that a thousand-node cluster stays cheap.
const QH_CACHE_CAPACITY: usize = 32;

/// Online classifier + history logger + prediction endpoint for one node.
#[derive(Debug, Clone)]
pub struct StateManager {
    model: AvailabilityModel,
    monitor: ResourceMonitor,
    store: HistoryStore,
    current_day: Vec<State>,
    day_index: usize,
    last_operational: State,
    overload_run: usize,
    currently_failed: bool,
    /// Memoized Q/H estimations for the prediction endpoint. The history
    /// length is part of the cache key, so the daily append in
    /// [`StateManager::end_day`] invalidates implicitly; wholesale store
    /// replacement must clear explicitly.
    qh_cache: QhCache,
    /// Which Eq.-3 solver the prediction endpoints run. The default fast
    /// path stays within 1e-12 (unit scale) of the paper-order oracle;
    /// `PaperOracle` forces the verbatim recursion for audits.
    solver_policy: SolverPolicy,
}

impl StateManager {
    /// Creates a manager starting at `first_day_index` (0 = Monday).
    #[must_use]
    pub fn new(model: AvailabilityModel, first_day_index: usize) -> StateManager {
        let monitor = ResourceMonitor::new(&model);
        StateManager {
            model,
            monitor,
            store: HistoryStore::new(),
            current_day: Vec::with_capacity(model.samples_per_day()),
            day_index: first_day_index,
            last_operational: State::S1,
            overload_run: 0,
            currently_failed: false,
            qh_cache: QhCache::new(QH_CACHE_CAPACITY),
            solver_policy: SolverPolicy::default(),
        }
    }

    /// Selects the Eq.-3 solver the prediction endpoints dispatch to.
    #[must_use]
    pub fn with_solver_policy(mut self, policy: SolverPolicy) -> StateManager {
        self.solver_policy = policy;
        self
    }

    /// The solver policy in use.
    #[must_use]
    pub fn solver_policy(&self) -> SolverPolicy {
        self.solver_policy
    }

    /// The availability model in use.
    #[must_use]
    pub fn model(&self) -> &AvailabilityModel {
        &self.model
    }

    /// Seeds the manager with pre-existing history (e.g. training days).
    pub fn preload_history(&mut self, store: HistoryStore) {
        if let Some(last) = store.days().last() {
            self.day_index = last.day_index + 1;
        }
        self.store = store;
        // The replacement store may coincidentally have the same number of
        // days as the old one, which would defeat the length-keyed implicit
        // invalidation — drop everything.
        self.qh_cache.clear();
    }

    /// Processes one monitoring period. `truth` is `None` while the machine
    /// is down (no sample is produced).
    pub fn observe(&mut self, truth: Option<LoadSample>) -> OnlineDecision {
        let tolerance = self.model.transient_tolerance_steps();
        let report = self.monitor.observe(truth);
        let raw = match report {
            MonitorReport::Sample(sample) => {
                fgcs_core::classify::StateClassifier::new(self.model).classify_sample(&sample)
            }
            // A stale heartbeat is not yet a state change; keep the last
            // operational state on the books.
            MonitorReport::HeartbeatStale => {
                self.flush_overload_as(self.last_operational);
                self.push(self.last_operational);
                return OnlineDecision::Operational(self.last_operational);
            }
            MonitorReport::Revoked => State::S5,
        };
        match raw {
            State::S1 | State::S2 => {
                // A spike that ended before the tolerance was transient: its
                // samples are already recorded as the surrounding state.
                self.overload_run = 0;
                self.last_operational = raw;
                self.currently_failed = false;
                self.push(raw);
                OnlineDecision::Operational(raw)
            }
            State::S3 => {
                self.overload_run += 1;
                if self.overload_run == tolerance.max(1) {
                    // The spike just became steady overload: rewrite the
                    // provisional samples of this run as S3.
                    let n = self.current_day.len();
                    let from = n.saturating_sub(self.overload_run - 1);
                    for s in &mut self.current_day[from..] {
                        *s = State::S3;
                    }
                    self.currently_failed = true;
                    self.push(State::S3);
                    OnlineDecision::Failed(State::S3)
                } else if self.overload_run > tolerance.max(1) {
                    self.currently_failed = true;
                    self.push(State::S3);
                    OnlineDecision::Failed(State::S3)
                } else {
                    // Provisionally record the surrounding operational state;
                    // rewritten if the overload persists.
                    self.push(self.last_operational);
                    OnlineDecision::Transient
                }
            }
            failure => {
                // S4 / S5 interrupting a short spike: the offline folding
                // assigns the spike to the preceding operational state.
                self.flush_overload_as(self.last_operational);
                self.currently_failed = true;
                self.push(failure);
                OnlineDecision::Failed(failure)
            }
        }
    }

    fn flush_overload_as(&mut self, state: State) {
        if self.overload_run > 0 {
            let n = self.current_day.len();
            let tolerance = self.model.transient_tolerance_steps().max(1);
            if self.overload_run < tolerance {
                let from = n.saturating_sub(self.overload_run);
                for s in &mut self.current_day[from..] {
                    *s = state;
                }
            }
            self.overload_run = 0;
        }
    }

    fn push(&mut self, state: State) {
        // Online per-state sample counts and transition count. Counts
        // reflect the decisions as made; the transient-overload rewrite may
        // later fold short S3 runs into the surrounding operational state.
        fgcs_runtime::counter_add!(
            match state {
                State::S1 => "sim.state.s1_samples",
                State::S2 => "sim.state.s2_samples",
                State::S3 => "sim.state.s3_samples",
                State::S4 => "sim.state.s4_samples",
                State::S5 => "sim.state.s5_samples",
            },
            1
        );
        if self.current_day.last().is_some_and(|&prev| prev != state) {
            fgcs_runtime::counter_add!("sim.state.transitions", 1);
        }
        self.current_day.push(state);
        if self.current_day.len() >= self.model.samples_per_day() {
            self.end_day();
        }
    }

    /// Finalises the current (possibly partial) day into the history store.
    pub fn end_day(&mut self) {
        if self.current_day.is_empty() {
            return;
        }
        fgcs_runtime::counter_add!("sim.state.days_closed", 1);
        let states = std::mem::take(&mut self.current_day);
        self.store.push_day(DayLog::new(
            self.day_index,
            StateLog::new(self.model.monitor_period_secs, states),
        ));
        self.day_index += 1;
        self.overload_run = 0;
    }

    /// The accumulated history.
    #[must_use]
    pub fn history(&self) -> &HistoryStore {
        &self.store
    }

    /// Index of the day currently being recorded.
    #[must_use]
    pub fn current_day_index(&self) -> usize {
        self.day_index
    }

    /// Seconds into the current day (based on samples recorded today).
    #[must_use]
    pub fn time_of_day_secs(&self) -> u32 {
        self.current_day.len() as u32 * self.model.monitor_period_secs
    }

    /// Whether the machine is currently in a failure state (S3/S4/S5): no
    /// guest should be submitted until it recovers.
    #[must_use]
    pub fn currently_failed(&self) -> bool {
        self.currently_failed
    }

    /// The most recent operational state (the prediction initial state).
    #[must_use]
    pub fn last_operational(&self) -> State {
        self.last_operational
    }

    /// Predicts the temporal reliability for the next `horizon_secs`
    /// seconds, anchored at the current time-of-day — the §5.1 endpoint the
    /// gateway answers job-submission queries with.
    ///
    /// The Q/H estimation behind the query is memoized in a per-manager
    /// LRU: a scheduling round that probes the same node for several jobs
    /// (or a choose + configure pair with the same horizon) estimates the
    /// kernel once and reuses it until the history grows.
    pub fn predict_tr(&self, horizon_secs: u32) -> Result<f64, CoreError> {
        let (day_type, window) = self.query_window(horizon_secs);
        // The cache is private to this manager, so the host component of
        // the key is constant.
        SmpPredictor::new(self.model)
            .with_solver_policy(self.solver_policy)
            .predict_cached(
                &self.qh_cache,
                0,
                &self.store,
                day_type,
                window,
                self.last_operational,
            )
    }

    /// Like [`StateManager::predict_tr`], but through the
    /// graceful-degradation chain ([`RobustPredictor`]): always answers,
    /// tagging the TR with how it was obtained. A manager with no usable
    /// history answers the conservative prior instead of erroring — this
    /// is the endpoint a fault-tolerant scheduler should query.
    #[must_use]
    pub fn predict_tr_qualified(&self, horizon_secs: u32) -> QualifiedTr {
        let (day_type, window) = self.query_window(horizon_secs);
        let robust = RobustPredictor::new(
            SmpPredictor::new(self.model).with_solver_policy(self.solver_policy),
        );
        match robust.predict(
            &self.qh_cache,
            0,
            &self.store,
            day_type,
            window,
            self.last_operational,
        ) {
            Ok(q) => q,
            // `last_operational` is S1/S2 by construction, so the
            // failure-initial-state error cannot fire; answer the prior
            // defensively anyway rather than propagating.
            Err(_) => QualifiedTr {
                tr: robust.prior_tr(),
                quality: PredictionQuality::Prior,
            },
        }
    }

    /// The (day-type, window) coordinates of a prediction anchored at the
    /// current time-of-day, with the horizon clamped to what a two-day
    /// window can express.
    fn query_window(&self, horizon_secs: u32) -> (DayType, TimeWindow) {
        let start = self
            .time_of_day_secs()
            .min(fgcs_core::window::SECS_PER_DAY - 1);
        let horizon = horizon_secs.min(2 * fgcs_core::window::SECS_PER_DAY - start);
        let window = TimeWindow::new(start, horizon.max(self.model.monitor_period_secs));
        (DayType::of_day(self.day_index), window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AvailabilityModel {
        AvailabilityModel::default()
    }

    fn load(cpu: f64) -> Option<LoadSample> {
        Some(LoadSample {
            host_cpu: cpu,
            free_mem_mb: 400.0,
            alive: true,
        })
    }

    #[test]
    fn light_load_is_s1() {
        let mut m = StateManager::new(model(), 0);
        assert_eq!(m.observe(load(0.1)), OnlineDecision::Operational(State::S1));
        assert_eq!(m.observe(load(0.4)), OnlineDecision::Operational(State::S2));
    }

    #[test]
    fn transient_spike_suspends_then_recovers() {
        let mut m = StateManager::new(model(), 0);
        m.observe(load(0.1));
        for _ in 0..5 {
            assert_eq!(m.observe(load(0.9)), OnlineDecision::Transient);
        }
        assert_eq!(m.observe(load(0.1)), OnlineDecision::Operational(State::S1));
        // The provisional samples stayed S1.
        m.end_day();
        let states = m.history().days()[0].log.states().to_vec();
        assert!(states.iter().all(|&s| s == State::S1), "{states:?}");
    }

    #[test]
    fn steady_overload_becomes_s3_and_rewrites_run() {
        let mut m = StateManager::new(model(), 0);
        m.observe(load(0.1));
        let tol = model().transient_tolerance_steps();
        for i in 0..tol + 3 {
            let d = m.observe(load(0.9));
            if i + 1 < tol {
                assert_eq!(d, OnlineDecision::Transient, "step {i}");
            } else {
                assert_eq!(d, OnlineDecision::Failed(State::S3), "step {i}");
            }
        }
        m.end_day();
        let states = m.history().days()[0].log.states().to_vec();
        assert_eq!(states[0], State::S1);
        for &s in &states[1..] {
            assert_eq!(s, State::S3);
        }
    }

    #[test]
    fn online_log_matches_offline_classifier() {
        use fgcs_core::classify::StateClassifier;
        // A day's worth of varied samples.
        let mdl = model();
        let mut samples = Vec::new();
        for i in 0..mdl.samples_per_day() {
            let cpu = match i % 700 {
                0..=99 => 0.1,
                100..=105 => 0.95, // transient
                106..=399 => 0.35,
                400..=440 => 0.9, // steady overload
                _ => 0.05,
            };
            samples.push(LoadSample {
                host_cpu: cpu,
                free_mem_mb: 400.0,
                alive: i % 700 != 600, // occasional one-off dead sample
            });
        }
        let mut m = StateManager::new(mdl, 0);
        for s in &samples {
            m.observe(Some(*s));
        }
        let online = m.history().days()[0].log.states().to_vec();
        let offline = StateClassifier::new(mdl).classify(&samples);
        // The single dead samples differ (heartbeat tolerance online vs
        // immediate S5 offline); everything else must agree.
        let mismatches = online.iter().zip(&offline).filter(|(a, b)| a != b).count();
        let dead = samples.iter().filter(|s| !s.alive).count();
        assert!(
            mismatches <= dead,
            "{mismatches} mismatches vs {dead} dead samples"
        );
    }

    #[test]
    fn memory_exhaustion_is_failed_s4() {
        let mut m = StateManager::new(model(), 0);
        let s = LoadSample {
            host_cpu: 0.1,
            free_mem_mb: 10.0,
            alive: true,
        };
        assert_eq!(m.observe(Some(s)), OnlineDecision::Failed(State::S4));
    }

    #[test]
    fn sustained_death_is_revocation() {
        let mut m = StateManager::new(model(), 0);
        m.observe(load(0.1));
        // Gap = 3 steps at default config.
        assert_eq!(m.observe(None), OnlineDecision::Operational(State::S1));
        assert_eq!(m.observe(None), OnlineDecision::Operational(State::S1));
        assert_eq!(m.observe(None), OnlineDecision::Failed(State::S5));
    }

    #[test]
    fn day_rollover_finalises_log() {
        let mdl = model();
        let mut m = StateManager::new(mdl, 0);
        for _ in 0..mdl.samples_per_day() {
            m.observe(load(0.1));
        }
        assert_eq!(m.history().len(), 1);
        assert_eq!(m.current_day_index(), 1);
        assert_eq!(m.time_of_day_secs(), 0);
    }

    #[test]
    fn preloaded_history_enables_prediction() {
        use fgcs_core::log::{DayLog, StateLog};
        let mdl = model();
        let mut store = HistoryStore::new();
        // A full week, so the current day (7 = Monday) has same-type history.
        for d in 0..7 {
            store.push_day(DayLog::new(
                d,
                StateLog::new(6, vec![State::S1; mdl.samples_per_day()]),
            ));
        }
        let mut m = StateManager::new(mdl, 0);
        m.preload_history(store);
        assert_eq!(m.current_day_index(), 7);
        let tr = m.predict_tr(3600).unwrap();
        assert_eq!(tr, 1.0);
    }

    #[test]
    fn predict_without_history_errors() {
        let m = StateManager::new(model(), 0);
        assert!(m.predict_tr(3600).is_err());
    }

    #[test]
    fn qualified_prediction_always_answers() {
        // No history at all: the strict endpoint errors, the qualified one
        // answers the conservative prior.
        let m = StateManager::new(model(), 0);
        let q = m.predict_tr_qualified(3600);
        assert_eq!(q.quality, PredictionQuality::Prior);
        assert_eq!(q.tr, fgcs_core::robust::DEFAULT_PRIOR_TR);
    }

    #[test]
    fn qualified_prediction_matches_strict_on_healthy_history() {
        use fgcs_core::log::{DayLog, StateLog};
        let mdl = model();
        let mut store = HistoryStore::new();
        for d in 0..7 {
            store.push_day(DayLog::new(
                d,
                StateLog::new(6, vec![State::S1; mdl.samples_per_day()]),
            ));
        }
        let mut m = StateManager::new(mdl, 0);
        m.preload_history(store);
        let strict = m.predict_tr(3600).unwrap();
        let q = m.predict_tr_qualified(3600);
        assert_eq!(q.quality, PredictionQuality::Exact);
        assert_eq!(q.tr.to_bits(), strict.to_bits());
    }
}
