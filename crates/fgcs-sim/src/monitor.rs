//! The Resource Monitor daemon (paper §5.2): samples host resource usage
//! every few seconds, stamps a heartbeat, and detects revocation by the
//! heartbeat gap — "if the gap between the two timestamps exceeds a
//! threshold, it indicates that the resource monitor, and by implication
//! the ishare system, had been turned off on the monitored machine".

use fgcs_core::model::{AvailabilityModel, LoadSample};

/// What the monitor reports for one period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MonitorReport {
    /// A fresh measurement.
    Sample(LoadSample),
    /// The heartbeat is stale but still within the gap threshold — the
    /// machine may just be slow; no state change yet.
    HeartbeatStale,
    /// The heartbeat gap exceeded the threshold: the machine is revoked.
    Revoked,
}

/// Replays a machine's sample stream with heartbeat-based URR detection.
#[derive(Debug, Clone)]
pub struct ResourceMonitor {
    gap_steps: usize,
    stale_steps: usize,
    /// Accumulated CPU cost of monitoring (fraction of one period each).
    overhead_fraction: f64,
}

impl ResourceMonitor {
    /// Creates a monitor for the given model configuration.
    #[must_use]
    pub fn new(model: &AvailabilityModel) -> ResourceMonitor {
        let gap_steps = (model.heartbeat_gap_secs / model.monitor_period_secs).max(1) as usize;
        ResourceMonitor {
            gap_steps,
            stale_steps: 0,
            // The paper measured < 1 % CPU for 6-second sampling; we account
            // a conservative 0.2 % so the overhead experiment has a number.
            overhead_fraction: 0.002,
        }
    }

    /// Processes one period's underlying truth (`None` = the machine is
    /// down and produced no sample) and returns what an observer sees.
    pub fn observe(&mut self, truth: Option<LoadSample>) -> MonitorReport {
        match truth {
            Some(sample) if sample.alive => {
                self.stale_steps = 0;
                MonitorReport::Sample(sample)
            }
            _ => {
                self.stale_steps += 1;
                if self.stale_steps >= self.gap_steps {
                    MonitorReport::Revoked
                } else {
                    MonitorReport::HeartbeatStale
                }
            }
        }
    }

    /// Fraction of the machine's CPU the monitoring itself consumes.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        self.overhead_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AvailabilityModel {
        AvailabilityModel::default() // 6 s period, 18 s gap -> 3 steps
    }

    #[test]
    fn live_samples_pass_through() {
        let mut m = ResourceMonitor::new(&model());
        let s = LoadSample::idle(256.0);
        assert_eq!(m.observe(Some(s)), MonitorReport::Sample(s));
    }

    #[test]
    fn revocation_detected_after_gap() {
        let mut m = ResourceMonitor::new(&model());
        assert_eq!(m.observe(None), MonitorReport::HeartbeatStale);
        assert_eq!(m.observe(None), MonitorReport::HeartbeatStale);
        assert_eq!(m.observe(None), MonitorReport::Revoked);
        assert_eq!(m.observe(None), MonitorReport::Revoked);
    }

    #[test]
    fn heartbeat_recovers_after_return() {
        let mut m = ResourceMonitor::new(&model());
        m.observe(None);
        m.observe(None);
        let s = LoadSample::idle(256.0);
        assert_eq!(m.observe(Some(s)), MonitorReport::Sample(s));
        // Gap counter reset: takes the full gap again.
        assert_eq!(m.observe(None), MonitorReport::HeartbeatStale);
    }

    #[test]
    fn dead_sample_counts_as_missing() {
        let mut m = ResourceMonitor::new(&model());
        for _ in 0..2 {
            m.observe(Some(LoadSample::revoked()));
        }
        assert_eq!(
            m.observe(Some(LoadSample::revoked())),
            MonitorReport::Revoked
        );
    }

    #[test]
    fn overhead_is_below_paper_bound() {
        let m = ResourceMonitor::new(&model());
        assert!(m.overhead_fraction() < 0.01);
    }
}
