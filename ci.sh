#!/bin/sh
# Hermetic CI for the fgcs workspace.
#
# The workspace is std-only: every crate depends only on in-tree path
# crates (see crates/fgcs-runtime), so the whole pipeline runs with an
# empty cargo registry. `--offline` makes any accidental reintroduction
# of an external dependency a hard failure rather than a download.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo clippy (bench-harness targets)"
cargo clippy --offline -p fgcs-bench --all-targets --features bench-harness -- -D warnings

echo "== cargo check fgcs-runtime without the metrics feature (no-op macro path)"
cargo check -q --offline -p fgcs-runtime --no-default-features

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo build --release --offline --examples"
cargo build --release --offline --workspace --examples

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== chaos smoke: fixed-seed fault campaign (invariants enforced by exit code)"
cargo run -q --release --offline --bin fgcs -- \
  chaos --seed 20060625 --steps 2000 --machines 4 > /dev/null

echo "== chaos smoke: zero-fault plan must be bit-identical to the unfaulted pipeline"
zero_out=$(cargo run -q --release --offline --bin fgcs -- \
  chaos --seed 20060625 --steps 2000 --machines 4 --zero-faults)
plain_out=$(cargo run -q --release --offline --bin fgcs -- \
  chaos --seed 20060625 --steps 2000 --machines 4 --no-faults)
if [ "$zero_out" != "$plain_out" ]; then
  echo "zero-fault chaos report diverged from the unfaulted pipeline:"
  echo "  zero-faults: $zero_out"
  echo "  no-faults:   $plain_out"
  exit 1
fi

echo "== cargo doc --offline --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps

echo "== bench smoke -> BENCH_baseline.json (hard fast-path gates + check against the previous baseline)"
prev_baseline=$(mktemp)
cp BENCH_baseline.json "$prev_baseline"
bench_ok=0
for attempt in 1 2 3; do
  cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- --out BENCH_baseline.json
  # --against flags >1.25x growth on keys present in both baselines; a
  # noisy run can trip it, so retry before declaring a real regression.
  if cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- \
      --check BENCH_baseline.json --against "$prev_baseline"; then
    bench_ok=1
    break
  fi
  echo "-- regression flagged on attempt $attempt; re-running to rule out noise"
done
rm -f "$prev_baseline"
if [ "$bench_ok" != 1 ]; then
  echo "bench regression persisted across 3 runs"
  exit 1
fi

echo "CI OK"
