#!/bin/sh
# Hermetic CI for the fgcs workspace.
#
# The workspace is std-only: every crate depends only on in-tree path
# crates (see crates/fgcs-runtime), so the whole pipeline runs with an
# empty cargo registry. `--offline` makes any accidental reintroduction
# of an external dependency a hard failure rather than a download.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo clippy (bench-harness targets)"
cargo clippy --offline -p fgcs-bench --all-targets --features bench-harness -- -D warnings

echo "== cargo check fgcs-runtime without the metrics feature (no-op macro path)"
cargo check -q --offline -p fgcs-runtime --no-default-features

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo build --release --offline --examples"
cargo build --release --offline --workspace --examples

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== bench smoke -> BENCH_baseline.json"
cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- --out BENCH_baseline.json
cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- --check BENCH_baseline.json

echo "CI OK"
