#!/bin/sh
# Hermetic CI for the fgcs workspace.
#
# The workspace is std-only: every crate depends only on in-tree path
# crates (see crates/fgcs-runtime), so the whole pipeline runs with an
# empty cargo registry. `--offline` makes any accidental reintroduction
# of an external dependency a hard failure rather than a download.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "CI OK"
