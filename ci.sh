#!/bin/sh
# Hermetic CI for the fgcs workspace.
#
# The workspace is std-only: every crate depends only on in-tree path
# crates (see crates/fgcs-runtime), so the whole pipeline runs with an
# empty cargo registry. `--offline` makes any accidental reintroduction
# of an external dependency a hard failure rather than a download.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo clippy (bench-harness targets)"
cargo clippy --offline -p fgcs-bench --all-targets --features bench-harness -- -D warnings

echo "== cargo check fgcs-runtime without the metrics feature (no-op macro path)"
cargo check -q --offline -p fgcs-runtime --no-default-features

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo build --release --offline --examples"
cargo build --release --offline --workspace --examples

echo "== fgcs lint (static analysis: determinism, unsafe audit, lock order, no-alloc, hermeticity)"
# Hard gate: any finding that survives lint.allow fails CI. The < 1 s
# budget is asserted by crates/fgcs-lint/tests/workspace_clean.rs.
cargo run -q --release --offline --bin fgcs -- lint --timings

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== chaos smoke: fixed-seed fault campaign (invariants enforced by exit code)"
cargo run -q --release --offline --bin fgcs -- \
  chaos --seed 20060625 --steps 2000 --machines 4 > /dev/null

echo "== chaos smoke: zero-fault plan must be bit-identical to the unfaulted pipeline"
zero_out=$(cargo run -q --release --offline --bin fgcs -- \
  chaos --seed 20060625 --steps 2000 --machines 4 --zero-faults)
plain_out=$(cargo run -q --release --offline --bin fgcs -- \
  chaos --seed 20060625 --steps 2000 --machines 4 --no-faults)
if [ "$zero_out" != "$plain_out" ]; then
  echo "zero-fault chaos report diverged from the unfaulted pipeline:"
  echo "  zero-faults: $zero_out"
  echo "  no-faults:   $plain_out"
  exit 1
fi

echo "== serve smoke: oneshot batch sweep must match offline fgcs sweep --json byte-for-byte"
fgcs_bin=target/release/fgcs
serve_tmp=$(mktemp -d)
"$fgcs_bin" generate --seed 7 --days 10 --out "$serve_tmp" > /dev/null
"$fgcs_bin" encode "$serve_tmp/machine-0.json" --host 1 > "$serve_tmp/reqs.jsonl"
{
  cat "$serve_tmp/reqs.jsonl"
  echo '{"op":"sweep","host":1,"start":9.0,"hours":2.0,"points":12}'
  echo '{"op":"shutdown"}'
} | "$fgcs_bin" serve --oneshot > "$serve_tmp/oneshot.jsonl"
grep '^{"window"' "$serve_tmp/oneshot.jsonl" > "$serve_tmp/sweep_serve.json"
"$fgcs_bin" sweep "$serve_tmp/machine-0.json" --start 9.0 --hours 2.0 --json \
  > "$serve_tmp/sweep_cli.json"
if ! cmp -s "$serve_tmp/sweep_serve.json" "$serve_tmp/sweep_cli.json"; then
  echo "oneshot serve sweep diverged from offline fgcs sweep --json:"
  diff "$serve_tmp/sweep_serve.json" "$serve_tmp/sweep_cli.json" || true
  exit 1
fi

echo "== serve smoke: TCP server round trip (streamed ingest -> sweep == offline; clean shutdown)"
timeout 120 "$fgcs_bin" serve --port 0 --metrics-out metrics_export.json \
  > "$serve_tmp/server.log" &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$serve_tmp/server.log" 2>/dev/null || true)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "server never announced its address:"; cat "$serve_tmp/server.log"; exit 1
fi
{
  cat "$serve_tmp/reqs.jsonl"
  echo '{"op":"sweep","host":1,"start":9.0,"hours":2.0,"points":12}'
  echo '{"op":"stats"}'
} | "$fgcs_bin" query "$addr" > "$serve_tmp/tcp_out.jsonl"
echo '{"op":"shutdown"}' | "$fgcs_bin" query "$addr" > /dev/null
if ! wait "$server_pid"; then
  echo "server did not shut down cleanly (timeout or error):"
  cat "$serve_tmp/server.log"
  exit 1
fi
if ! grep '^{"window"' "$serve_tmp/tcp_out.jsonl" | cmp -s - "$serve_tmp/sweep_cli.json"; then
  echo "TCP serve sweep diverged from offline fgcs sweep --json"
  exit 1
fi
grep -q '"log_records":10' "$serve_tmp/tcp_out.jsonl" || {
  echo "server stats did not account for the 10 streamed ingests:"
  tail -1 "$serve_tmp/tcp_out.jsonl"
  exit 1
}
echo "== serve throughput smoke: pipelined batch stream == sequential bytes, ops/sec floor"
# The same op stream (10 ingests + 2000 predicts) sent two ways against two
# fresh servers: as individual lines, and as 40-op `batch` requests
# pipelined over one TCP connection. The reply streams must be
# byte-identical, and the batched run must clear a conservative
# throughput floor (catastrophic-regression tripwire, not a benchmark).
awk 'BEGIN { for (i = 0; i < 2000; i++) {
  start = 6 + (i % 4) * 3;
  printf "{\"op\":\"predict\",\"host\":1,\"start\":%d.0,\"hours\":2.0}\n", start;
} }' > "$serve_tmp/predicts.jsonl"
cat "$serve_tmp/reqs.jsonl" "$serve_tmp/predicts.jsonl" > "$serve_tmp/seq_in.jsonl"
awk 'NR % 40 == 1 { if (NR > 1) print out "]}"; out = "{\"op\":\"batch\",\"ops\":[" $0; next }
     { out = out "," $0 }
     END { if (out != "") print out "]}" }' \
  "$serve_tmp/seq_in.jsonl" > "$serve_tmp/batch_in.jsonl"
wait_for_addr() {
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$serve_tmp/server.log" 2>/dev/null || true)
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "server never announced its address:"; cat "$serve_tmp/server.log"; exit 1
  fi
}
start_server() {
  : > "$serve_tmp/server.log"
  timeout 120 "$fgcs_bin" serve --port 0 "$@" > "$serve_tmp/server.log" &
  server_pid=$!
  wait_for_addr
}
start_server
"$fgcs_bin" query --pipelined "$addr" < "$serve_tmp/seq_in.jsonl" > "$serve_tmp/seq_out.jsonl"
echo '{"op":"shutdown"}' | "$fgcs_bin" query "$addr" > /dev/null
wait "$server_pid"
start_server
t0=$(date +%s%N)
"$fgcs_bin" query --pipelined "$addr" < "$serve_tmp/batch_in.jsonl" > "$serve_tmp/batch_out.jsonl"
t1=$(date +%s%N)
echo '{"op":"shutdown"}' | "$fgcs_bin" query "$addr" > /dev/null
wait "$server_pid"
if ! cmp -s "$serve_tmp/seq_out.jsonl" "$serve_tmp/batch_out.jsonl"; then
  echo "pipelined batch reply stream diverged from sequential requests:"
  diff "$serve_tmp/seq_out.jsonl" "$serve_tmp/batch_out.jsonl" | head -20 || true
  exit 1
fi
n_ops=$(wc -l < "$serve_tmp/seq_in.jsonl")
ops_per_sec=$(awk -v n="$n_ops" -v t0="$t0" -v t1="$t1" \
  'BEGIN { printf "%d", n * 1e9 / (t1 - t0) }')
echo "-- $n_ops ops over one pipelined connection: $ops_per_sec ops/sec"
if [ "$ops_per_sec" -lt 500 ]; then
  echo "batched serve throughput $ops_per_sec ops/sec is below the 500 ops/sec floor"
  exit 1
fi
echo "== crash-recovery smoke: kill -9 a durable server mid-stream, recovered sweep == offline replay"
# Stream the first 6 of 10 encoded days into `serve --data-dir` in lockstep
# (every sent day is acknowledged), then SIGKILL the server — no flush, no
# shutdown op. A fresh process recovering from the WAL must hold exactly
# the 6 acknowledged days, and its sweep must be byte-identical to an
# offline oneshot replay of the same 6 ingest lines.
# No `timeout` wrapper here: kill -9 must hit the serve process itself —
# SIGKILLing a wrapper would orphan the server still holding the WAL (and
# this stage's stdio pipes, wedging the CI step).
: > "$serve_tmp/server.log"
"$fgcs_bin" serve --port 0 --data-dir "$serve_tmp/wal" > "$serve_tmp/server.log" &
server_pid=$!
wait_for_addr
head -6 "$serve_tmp/reqs.jsonl" | "$fgcs_bin" query "$addr" > "$serve_tmp/acks.jsonl"
acked=$(grep -c '"ok":true' "$serve_tmp/acks.jsonl")
if [ "$acked" != 6 ]; then
  echo "expected 6 acknowledged ingests before the kill, got $acked:"
  cat "$serve_tmp/acks.jsonl"
  exit 1
fi
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
{
  echo '{"op":"host","host":1}'
  echo '{"op":"sweep","host":1,"start":9.0,"hours":2.0,"points":12}'
} | "$fgcs_bin" serve --oneshot --data-dir "$serve_tmp/wal" > "$serve_tmp/recovered.jsonl"
grep -q '"days":6' "$serve_tmp/recovered.jsonl" || {
  echo "recovered registry does not hold exactly the 6 acknowledged days:"
  cat "$serve_tmp/recovered.jsonl"
  exit 1
}
{
  head -6 "$serve_tmp/reqs.jsonl"
  echo '{"op":"sweep","host":1,"start":9.0,"hours":2.0,"points":12}'
} | "$fgcs_bin" serve --oneshot > "$serve_tmp/replayed.jsonl"
grep '^{"window"' "$serve_tmp/recovered.jsonl" > "$serve_tmp/recovered_sweep.json"
grep '^{"window"' "$serve_tmp/replayed.jsonl" > "$serve_tmp/replay_sweep.json"
if ! cmp -s "$serve_tmp/recovered_sweep.json" "$serve_tmp/replay_sweep.json"; then
  echo "recovered sweep diverged from the offline replay after kill -9:"
  diff "$serve_tmp/recovered_sweep.json" "$serve_tmp/replay_sweep.json" || true
  exit 1
fi

echo "== serve chaos smoke: byte-faulted client + kill -9, recovery invariant enforced by exit code"
"$fgcs_bin" chaos --serve --seed 20060625 --machines 3 --days 6

rm -rf "$serve_tmp"

echo "== cargo doc --offline --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps

echo "== bench smoke -> BENCH_baseline.json (hard fast-path gates + check against the previous baseline)"
prev_baseline=$(mktemp)
cp BENCH_baseline.json "$prev_baseline"
bench_ok=0
for attempt in 1 2 3; do
  cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- --out BENCH_baseline.json
  # --against flags >1.25x growth on keys present in both baselines; a
  # noisy run can trip it, so retry before declaring a real regression.
  if cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- \
      --check BENCH_baseline.json --against "$prev_baseline"; then
    bench_ok=1
    break
  fi
  echo "-- regression flagged on attempt $attempt; re-running to rule out noise"
done
rm -f "$prev_baseline"
if [ "$bench_ok" != 1 ]; then
  echo "bench regression persisted across 3 runs"
  exit 1
fi

echo "== scale bench: cluster_serve at 100k hosts, p50/p99 merged into BENCH_baseline.json"
cargo run -q --release --offline -p fgcs-bench --bin cluster_serve -- \
  --hosts 100000 --merge BENCH_baseline.json
cargo run -q --release --offline -p fgcs-bench --bin bench_smoke -- --check BENCH_baseline.json

echo "CI OK"
